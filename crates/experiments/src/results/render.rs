//! Pluggable renderers over the typed results model.
//!
//! One [`Renderer`] implementation per output format:
//!
//! * [`TextRenderer`] — the historical aligned-text tables, byte-identical
//!   to the pre-typed pipeline (the golden guard pins this);
//! * [`JsonRenderer`] — one self-describing JSON document per invocation,
//!   hand-rolled (no registry access, so no serde), with stable key order
//!   and shortest-round-trip float formatting so output is deterministic
//!   down to the byte across thread counts;
//! * [`CsvRenderer`] — RFC-4180-style CSV with proper quoting (the
//!   historical `--csv` path never escaped, which corrupted rows whose
//!   configuration labels contain commas, e.g. `(IJ-10x4x7, EJ-32x4)`).
//!
//! `jetty-repro` selects one with `--format {text,json,csv}`.

use std::fmt::Write as _;

use super::json;
use super::{ResultSet, TableData};

/// The output formats `jetty-repro --format` accepts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Format {
    /// Aligned text tables (the default; golden-guarded).
    #[default]
    Text,
    /// One JSON document for the whole invocation.
    Json,
    /// Comment-separated CSV sections on stdout.
    Csv,
}

impl Format {
    /// Every accepted format, in `--help` order.
    pub const ALL: [Format; 3] = [Format::Text, Format::Json, Format::Csv];

    /// Parses a `--format` value (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "csv" => Some(Format::Csv),
            _ => None,
        }
    }

    /// The CLI name of this format.
    pub fn name(self) -> &'static str {
        match self {
            Format::Text => "text",
            Format::Json => "json",
            Format::Csv => "csv",
        }
    }

    /// The renderer implementing this format.
    pub fn renderer(self) -> Box<dyn Renderer> {
        match self {
            Format::Text => Box::new(TextRenderer),
            Format::Json => Box::new(JsonRenderer),
            Format::Csv => Box::new(CsvRenderer),
        }
    }
}

/// Renders typed tables into one concrete output format.
///
/// The contract `jetty-repro` relies on: [`Renderer::render_set`] is the
/// *entire* stdout of an invocation (including the trailing newline), so
/// switching `--format` can never interleave formats or leak partial
/// output, and the text format reproduces the historical
/// one-`println!`-per-table byte stream exactly.
pub trait Renderer {
    /// Renders one table.
    fn render_table(&self, table: &TableData) -> String;

    /// Renders a whole result set. The default joins tables with one blank
    /// line (what consecutive `println!("{}", table.render())` calls
    /// produced historically); document formats override this.
    fn render_set(&self, set: &ResultSet) -> String {
        let mut out = String::new();
        for table in &set.tables {
            out.push_str(&self.render_table(table));
            out.push('\n');
        }
        out
    }
}

/// The aligned-text renderer (the historical `Table::render`).
#[derive(Clone, Copy, Debug, Default)]
pub struct TextRenderer;

impl Renderer for TextRenderer {
    fn render_table(&self, table: &TableData) -> String {
        let texts: Vec<Vec<String>> =
            table.rows.iter().map(|row| row.iter().map(|c| c.text()).collect()).collect();
        let ncols = table.columns.len().max(texts.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; ncols];
        for (i, h) in table.columns.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &texts {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", table.title);
        if !table.columns.is_empty() {
            push_aligned_row(&mut out, &table.columns, &widths);
            let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
            push_aligned_row(&mut out, &rule, &widths);
        }
        for row in &texts {
            push_aligned_row(&mut out, row, &widths);
        }
        out
    }
}

fn push_aligned_row(out: &mut String, cells: &[String], widths: &[usize]) {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        let _ = write!(out, "{:>width$}", cell, width = widths[i]);
    }
    out.push('\n');
}

/// The JSON renderer: one document per invocation, cells as typed objects.
///
/// Layout (key order is fixed; floats use shortest-round-trip formatting):
///
/// ```json
/// {
///   "format": 1,
///   "generator": "jetty-repro",
///   "tables": [
///     {
///       "id": "table2",
///       "title": "...",
///       "columns": ["App", "..."],
///       "rows": [
///         [{"kind":"label","value":"ba"}, {"kind":"ratio","value":0.471}]
///       ]
///     }
///   ]
/// }
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct JsonRenderer;

/// Version of the JSON document layout.
pub const JSON_FORMAT_VERSION: u64 = 1;

impl JsonRenderer {
    fn write_table(out: &mut String, table: &TableData, indent: &str) {
        let _ = writeln!(out, "{indent}{{");
        let _ = writeln!(out, "{indent}  \"id\": {},", json::quote(&table.id));
        let _ = writeln!(out, "{indent}  \"title\": {},", json::quote(&table.title));
        let columns: Vec<String> = table.columns.iter().map(|c| json::quote(c)).collect();
        let _ = writeln!(out, "{indent}  \"columns\": [{}],", columns.join(", "));
        if table.rows.is_empty() {
            let _ = writeln!(out, "{indent}  \"rows\": []");
        } else {
            let _ = writeln!(out, "{indent}  \"rows\": [");
            for (i, row) in table.rows.iter().enumerate() {
                let _ = write!(out, "{indent}    [");
                for (j, cell) in row.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    cell.write_json(out);
                }
                let comma = if i + 1 < table.rows.len() { "," } else { "" };
                let _ = writeln!(out, "]{comma}");
            }
            let _ = writeln!(out, "{indent}  ]");
        }
        let _ = write!(out, "{indent}}}");
    }
}

impl Renderer for JsonRenderer {
    fn render_table(&self, table: &TableData) -> String {
        let mut out = String::new();
        Self::write_table(&mut out, table, "");
        out.push('\n');
        out
    }

    fn render_set(&self, set: &ResultSet) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"format\": {JSON_FORMAT_VERSION},");
        out.push_str("  \"generator\": \"jetty-repro\",\n");
        if set.tables.is_empty() {
            out.push_str("  \"tables\": []\n");
        } else {
            out.push_str("  \"tables\": [\n");
            for (i, table) in set.tables.iter().enumerate() {
                Self::write_table(&mut out, table, "    ");
                out.push_str(if i + 1 < set.tables.len() { ",\n" } else { "\n" });
            }
            out.push_str("  ]\n");
        }
        out.push_str("}\n");
        out
    }
}

/// The CSV renderer. Per table: a header row and the data rows, each field
/// quoted when it contains a comma, quote, or newline (quotes doubled).
/// [`Renderer::render_set`] separates tables with a `# id: title` comment
/// line and one blank line, so a multi-table stdout dump stays navigable;
/// `--csv DIR` writes [`Renderer::render_table`] (no comment line) per
/// file, preserving the historical per-exhibit file layout.
#[derive(Clone, Copy, Debug, Default)]
pub struct CsvRenderer;

/// Escapes one CSV field (RFC-4180 quoting).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

impl Renderer for CsvRenderer {
    fn render_table(&self, table: &TableData) -> String {
        let mut out = String::new();
        if !table.columns.is_empty() {
            let fields: Vec<String> = table.columns.iter().map(|c| csv_field(c)).collect();
            let _ = writeln!(out, "{}", fields.join(","));
        }
        for row in &table.rows {
            let fields: Vec<String> = row.iter().map(|c| csv_field(&c.text())).collect();
            let _ = writeln!(out, "{}", fields.join(","));
        }
        out
    }

    fn render_set(&self, set: &ResultSet) -> String {
        let mut out = String::new();
        for table in &set.tables {
            let _ = writeln!(out, "# {}: {}", table.id, table.title);
            out.push_str(&self.render_table(table));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::json::Json;
    use super::super::Cell;
    use super::*;

    fn demo() -> TableData {
        let mut t = TableData::new("demo", "demo table");
        t.headers(["app", "value"]);
        t.row([Cell::label("ba"), Cell::Ratio(0.471)]);
        t.row([Cell::label("unstructured"), Cell::Ratio(0.03)]);
        t
    }

    #[test]
    fn text_renderer_aligns_columns_like_the_historical_table() {
        let s = TextRenderer.render_table(&demo());
        assert!(s.starts_with("== demo table ==\n"));
        assert!(s.contains("unstructured"));
        let lines: Vec<&str> = s.lines().skip(1).collect();
        let lens: Vec<usize> = lines.iter().map(|l| l.len()).collect();
        assert!(lens.windows(2).all(|w| w[0] == w[1]), "{lens:?}");
    }

    #[test]
    fn text_set_matches_one_println_per_table() {
        let mut set = ResultSet::new();
        set.push(demo());
        set.push(demo());
        let expected = format!("{}\n{}\n", demo().render(), demo().render());
        assert_eq!(TextRenderer.render_set(&set), expected);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = TableData::new("esc", "escaping");
        t.headers(["label", "note"]);
        t.row([Cell::label("(IJ-10x4x7, EJ-32x4)"), Cell::text_cell("plain")]);
        t.row([Cell::label("say \"hi\""), Cell::text_cell("multi\nline")]);
        let csv = CsvRenderer.render_table(&t);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("label,note"));
        assert_eq!(lines.next(), Some("\"(IJ-10x4x7, EJ-32x4)\",plain"));
        // The quoted cell doubles its quotes; the newline cell is quoted,
        // spanning two physical lines.
        assert_eq!(lines.next(), Some("\"say \"\"hi\"\"\",\"multi"));
        assert_eq!(lines.next(), Some("line\""));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn csv_set_separates_tables_with_comment_lines() {
        let mut set = ResultSet::new();
        set.push(demo());
        let out = CsvRenderer.render_set(&set);
        assert!(out.starts_with("# demo: demo table\n"));
        assert!(out.contains("app,value\n"));
        assert!(out.ends_with("\n\n"));
    }

    #[test]
    fn json_set_parses_and_reconstructs_every_cell() {
        let mut set = ResultSet::new();
        set.push(demo());
        let doc = JsonRenderer.render_set(&set);
        let parsed = Json::parse(&doc).expect("renderer output must be valid JSON");
        assert_eq!(parsed.get("format").and_then(Json::as_u64), Some(JSON_FORMAT_VERSION));
        let tables = parsed.get("tables").unwrap().as_array().unwrap();
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.get("id").unwrap().as_str(), Some("demo"));
        assert_eq!(t.get("columns").unwrap().as_array().unwrap().len(), 2);
        let rows = t.get("rows").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 2);
        let cell = Cell::from_json(&rows[0].as_array().unwrap()[1]).unwrap();
        assert_eq!(cell, Cell::Ratio(0.471));
    }

    #[test]
    fn json_escapes_titles_and_labels() {
        let mut t = TableData::new("q", "title with \"quotes\" and \\slashes\\");
        t.headers(["a"]);
        t.row([Cell::label("line\nbreak")]);
        let doc = JsonRenderer.render_set(&ResultSet { tables: vec![t] });
        let parsed = Json::parse(&doc).expect("escaped JSON must parse");
        let table = &parsed.get("tables").unwrap().as_array().unwrap()[0];
        assert_eq!(
            table.get("title").unwrap().as_str(),
            Some("title with \"quotes\" and \\slashes\\")
        );
        let cell = Cell::from_json(
            &table.get("rows").unwrap().as_array().unwrap()[0].as_array().unwrap()[0],
        )
        .unwrap();
        assert_eq!(cell, Cell::Label("line\nbreak".into()));
    }

    #[test]
    fn empty_set_renders_valid_documents_in_every_format() {
        let set = ResultSet::new();
        assert_eq!(TextRenderer.render_set(&set), "");
        assert_eq!(CsvRenderer.render_set(&set), "");
        let doc = JsonRenderer.render_set(&set);
        assert!(Json::parse(&doc).is_ok(), "{doc}");
    }

    #[test]
    fn format_parsing_and_names_round_trip() {
        for f in Format::ALL {
            assert_eq!(Format::parse(f.name()), Some(f));
            assert_eq!(Format::parse(&f.name().to_uppercase()), Some(f));
        }
        assert_eq!(Format::parse("yaml"), None);
        assert_eq!(Format::default(), Format::Text);
        // Each format's renderer is live and distinct on the same input.
        let mut set = ResultSet::new();
        set.push(demo());
        assert_ne!(
            Format::Text.renderer().render_set(&set),
            Format::Json.renderer().render_set(&set)
        );
        assert_ne!(
            Format::Json.renderer().render_set(&set),
            Format::Csv.renderer().render_set(&set)
        );
    }
}
