//! A minimal, dependency-free JSON value model: a writer the
//! [`JsonRenderer`](super::render::JsonRenderer) shares and a recursive-
//! descent parser the determinism tests (and the CI JSON-validity check)
//! use to read renderer output back. The container has no registry access,
//! so serde is not an option — this implements exactly the subset the
//! results pipeline needs: objects (with **insertion-ordered** keys, so
//! output key order is stable by construction), arrays, strings with full
//! escape handling, integer and float numbers, booleans and null.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent, kept exact.
    Int(i64),
    /// A non-negative integer too large for [`Json::Int`] (above
    /// `i64::MAX`), kept exact — full-range `u64` counts and run-store
    /// metadata must survive a parse round trip bit-for-bit.
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; keys keep document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object (first match, document order).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (integers coerce — `16.0` is written
    /// as `16` by the shortest-round-trip float writer).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::Int(n) => Some(*n as f64),
            Json::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => u64::try_from(*n).ok(),
            Json::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(value)
    }
}

/// Formats an `f64` for JSON output: Rust's shortest-round-trip `Display`
/// (guaranteed to parse back to the identical bits), with non-finite
/// values — which no result should ever contain — degraded to `null` so
/// the document stays valid JSON either way.
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// Quotes and escapes a string for JSON output: `"` and `\` are
/// backslash-escaped, the common control characters use their short forms,
/// and any other control character becomes `\u00XX`.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Byte-cursor recursive-descent parser.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", char::from(c), self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the unescaped run.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_owned())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => return Err(format!("raw control character at byte {}", self.pos)),
                None => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn escape(&mut self) -> Result<char, String> {
        let c = self.peek().ok_or("unterminated escape")?;
        self.pos += 1;
        Ok(match c {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let u = self.hex4()?;
                if (0xD800..0xDC00).contains(&u) {
                    // High surrogate: a low surrogate escape must follow.
                    if !self.eat_literal("\\u") {
                        return Err("lone high surrogate".to_owned());
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err("invalid low surrogate".to_owned());
                    }
                    let combined = 0x10000 + ((u - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(combined).ok_or("invalid surrogate pair")?
                } else {
                    char::from_u32(u).ok_or("lone low surrogate")?
                }
            }
            other => return Err(format!("bad escape \\{}", char::from(other))),
        })
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or("truncated \\u escape")?;
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "invalid \\u escape".to_owned())?;
        let value = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape {hex:?}"))?;
        self.pos = end;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_owned())?;
        if integral {
            if let Ok(n) = token.parse::<i64>() {
                return Ok(Json::Int(n));
            }
            // Non-negative integers in (i64::MAX, u64::MAX] stay exact
            // rather than degrading to a lossy f64.
            if let Ok(n) = token.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        token.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {token:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null"), Ok(Json::Null));
        assert_eq!(Json::parse(" true "), Ok(Json::Bool(true)));
        assert_eq!(Json::parse("false"), Ok(Json::Bool(false)));
        assert_eq!(Json::parse("42"), Ok(Json::Int(42)));
        assert_eq!(Json::parse("-7"), Ok(Json::Int(-7)));
        assert_eq!(Json::parse("18446744073709551615"), Ok(Json::UInt(u64::MAX)));
        assert_eq!(Json::parse("18446744073709551615").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(Json::parse("0.5"), Ok(Json::Num(0.5)));
        assert_eq!(Json::parse("1e3"), Ok(Json::Num(1000.0)));
        assert_eq!(Json::parse(r#""hi""#), Ok(Json::Str("hi".into())));
    }

    #[test]
    fn parses_structures_preserving_key_order() {
        let doc = r#"{"z": [1, 2.5, "three"], "a": {"nested": null}}"#;
        let v = Json::parse(doc).unwrap();
        let Json::Obj(entries) = &v else { panic!("not an object") };
        assert_eq!(entries[0].0, "z");
        assert_eq!(entries[1].0, "a");
        let arr = v.get("z").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("three"));
        assert_eq!(v.get("a").unwrap().get("nested"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in ["", "plain", "with \"quotes\"", "back\\slash", "tab\there\nnewline", "\u{1}"] {
            let quoted = quote(s);
            assert_eq!(Json::parse(&quoted), Ok(Json::Str(s.to_owned())), "{quoted}");
        }
        // Unicode escapes, including a surrogate pair.
        assert_eq!(Json::parse(r#""Aé""#), Ok(Json::Str("Aé".into())));
        assert_eq!(Json::parse(r#""😀""#), Ok(Json::Str("😀".into())));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.0, 0.1, 1.0 / 3.0, 47.1e6, -2.5e-7, f64::MAX, f64::MIN_POSITIVE] {
            let written = fmt_f64(x);
            let back = Json::parse(&written).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{written}");
        }
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a"}"#,
            r#"{"a":}"#,
            "[1 2]",
            "tru",
            "1.2.3",
            "\"unterminated",
            r#""\q""#,
            r#""\ud800""#,
            "{} extra",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn accessor_type_mismatches_are_none() {
        let v = Json::parse(r#"{"s":"x","n":-1}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_f64(), None);
        assert_eq!(v.get("n").unwrap().as_u64(), None, "negative is not u64");
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-1.0));
        assert_eq!(v.as_array(), None);
        assert_eq!(v.get("s").unwrap().get("x"), None);
    }
}
