//! The typed results model: collect values, render late.
//!
//! Historically every table builder formatted its numbers into `String`
//! cells at construction time, which welded the reproduction to one output
//! format and made anything downstream of a table — machine-readable
//! artifacts, regression diffing, sweep comparisons — impossible without
//! re-parsing text. This module inverts that: builders populate
//! [`TableData`] with typed [`Cell`]s (counts, ratios, energies, labels),
//! and a [`render::Renderer`] turns a finished [`ResultSet`] into
//! aligned text (byte-identical to the historical output, pinned by the
//! golden guard), JSON, or CSV — selected at the `jetty-repro` CLI with
//! `--format`.
//!
//! Three invariants the renderers rely on:
//!
//! * **Values are stored unscaled.** A [`Cell::Ratio`] holds the fraction,
//!   not the percentage; [`Cell::Millions`] holds the raw count. Scaling
//!   happens at render time, exactly where the historical formatting
//!   helpers did it, so the text renderer reproduces the old bytes.
//! * **Rows are rectangular.** [`TableData::row`] asserts width against the
//!   header like the historical `Table` did — ragged tables are harness
//!   bugs.
//! * **Cells are self-describing.** [`Cell::write_json`] and
//!   [`Cell::from_json`] round-trip every variant, so a JSON document can
//!   be parsed back into cells and re-rendered — the renderer-determinism
//!   tests do exactly that.

pub mod json;
pub mod render;

use std::fmt;

use self::json::Json;
use self::render::{CsvRenderer, Renderer, TextRenderer};

/// One typed value in a result table.
///
/// Each variant knows its historical text formatting (via
/// [`Cell::text`]) and its JSON encoding (via [`Cell::write_json`]).
#[derive(Clone, Debug, PartialEq)]
pub enum Cell {
    /// No value (e.g. the blank EJ-write cells of an ablation AVG row).
    Empty,
    /// A row/column key: an application abbreviation, a configuration
    /// label, a metric name.
    Label(String),
    /// Structural text that is not a scalar quantity (e.g. the `4 x 32x32`
    /// p-bit organisation of Table 4).
    Text(String),
    /// A raw event count, rendered as-is.
    Count(u64),
    /// A count rendered in millions with one decimal (`47.1M`).
    Millions(u64),
    /// A value already quoted in millions (the paper's Table 2 snoop
    /// column), rendered `{value}M`.
    MillionsValue(f64),
    /// A byte count rendered in megabytes with one decimal (`57.4MB`).
    MBytes(u64),
    /// A fraction in `[0, 1]`, rendered as a percentage with one decimal
    /// (`47.1%`).
    Ratio(f64),
    /// A measured fraction with the paper's value alongside, rendered
    /// `47.1% (50.0%)`.
    RatioPair {
        /// The measured fraction.
        measured: f64,
        /// The paper's quoted fraction.
        paper: f64,
    },
    /// A fraction delta rendered in signed percentage points (`+1.2`).
    DeltaPoints(f64),
    /// A plain float rendered with Rust's shortest `Display` form (the
    /// sweep's scale axis: `0.02` stays `0.02`, `1` stays `1`).
    Float(f64),
    /// A plain float rendered with a fixed number of decimals.
    Fixed {
        /// The value.
        value: f64,
        /// Decimal places in the text rendering.
        dp: u8,
    },
    /// An energy in microjoules, rendered with one decimal.
    EnergyUj(f64),
}

impl Cell {
    /// Convenience constructor: a [`Cell::Label`] from anything stringy.
    pub fn label(s: impl Into<String>) -> Self {
        Cell::Label(s.into())
    }

    /// Convenience constructor: a [`Cell::Text`] from anything stringy.
    pub fn text_cell(s: impl Into<String>) -> Self {
        Cell::Text(s.into())
    }

    /// The historical text rendering of this cell — byte-identical to what
    /// the pre-typed builders formatted at construction time.
    pub fn text(&self) -> String {
        match self {
            Cell::Empty => String::new(),
            Cell::Label(s) | Cell::Text(s) => s.clone(),
            Cell::Count(n) => n.to_string(),
            Cell::Millions(n) => format!("{:.1}M", *n as f64 / 1.0e6),
            Cell::MillionsValue(x) => format!("{x}M"),
            Cell::MBytes(n) => format!("{:.1}MB", *n as f64 / (1024.0 * 1024.0)),
            Cell::Ratio(x) => format!("{:.1}%", 100.0 * x),
            Cell::RatioPair { measured, paper } => {
                format!("{:.1}% ({:.1}%)", 100.0 * measured, 100.0 * paper)
            }
            Cell::DeltaPoints(d) => format!("{:+.1}", 100.0 * d),
            Cell::Float(x) => format!("{x}"),
            Cell::Fixed { value, dp } => format!("{value:.*}", usize::from(*dp)),
            Cell::EnergyUj(uj) => format!("{uj:.1}"),
        }
    }

    /// Appends this cell's JSON object (`{"kind": ..., ...}`) to `out`.
    /// The encoding is the exact inverse of [`Cell::from_json`].
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let num = json::fmt_f64;
        match self {
            Cell::Empty => out.push_str(r#"{"kind":"empty"}"#),
            Cell::Label(s) => {
                let _ = write!(out, r#"{{"kind":"label","value":{}}}"#, json::quote(s));
            }
            Cell::Text(s) => {
                let _ = write!(out, r#"{{"kind":"text","value":{}}}"#, json::quote(s));
            }
            Cell::Count(n) => {
                let _ = write!(out, r#"{{"kind":"count","value":{n}}}"#);
            }
            Cell::Millions(n) => {
                let _ = write!(out, r#"{{"kind":"millions","value":{n}}}"#);
            }
            Cell::MillionsValue(x) => {
                let _ = write!(out, r#"{{"kind":"millions_value","value":{}}}"#, num(*x));
            }
            Cell::MBytes(n) => {
                let _ = write!(out, r#"{{"kind":"mbytes","value":{n}}}"#);
            }
            Cell::Ratio(x) => {
                let _ = write!(out, r#"{{"kind":"ratio","value":{}}}"#, num(*x));
            }
            Cell::RatioPair { measured, paper } => {
                let _ = write!(
                    out,
                    r#"{{"kind":"ratio_pair","measured":{},"paper":{}}}"#,
                    num(*measured),
                    num(*paper)
                );
            }
            Cell::DeltaPoints(d) => {
                let _ = write!(out, r#"{{"kind":"delta_points","value":{}}}"#, num(*d));
            }
            Cell::Float(x) => {
                let _ = write!(out, r#"{{"kind":"float","value":{}}}"#, num(*x));
            }
            Cell::Fixed { value, dp } => {
                let _ = write!(out, r#"{{"kind":"fixed","value":{},"dp":{dp}}}"#, num(*value));
            }
            Cell::EnergyUj(uj) => {
                let _ = write!(out, r#"{{"kind":"energy_uj","value":{}}}"#, num(*uj));
            }
        }
    }

    /// Rebuilds a cell from its JSON encoding. Returns `None` when the
    /// object is not a cell this version understands.
    pub fn from_json(value: &Json) -> Option<Cell> {
        let kind = value.get("kind")?.as_str()?;
        let f = |key: &str| value.get(key).and_then(Json::as_f64);
        let n = |key: &str| value.get(key).and_then(Json::as_u64);
        Some(match kind {
            "empty" => Cell::Empty,
            "label" => Cell::Label(value.get("value")?.as_str()?.to_owned()),
            "text" => Cell::Text(value.get("value")?.as_str()?.to_owned()),
            "count" => Cell::Count(n("value")?),
            "millions" => Cell::Millions(n("value")?),
            "millions_value" => Cell::MillionsValue(f("value")?),
            "mbytes" => Cell::MBytes(n("value")?),
            "ratio" => Cell::Ratio(f("value")?),
            "ratio_pair" => Cell::RatioPair { measured: f("measured")?, paper: f("paper")? },
            "delta_points" => Cell::DeltaPoints(f("value")?),
            "float" => Cell::Float(f("value")?),
            "fixed" => Cell::Fixed { value: f("value")?, dp: u8::try_from(n("dp")?).ok()? },
            "energy_uj" => Cell::EnergyUj(f("value")?),
            _ => return None,
        })
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text())
    }
}

/// One table of typed cells: a machine-readable `id`, a human title, the
/// column headers, and rectangular rows.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TableData {
    /// Stable machine-readable key (`table2`, `fig6a`, `sweep`): the JSON
    /// table id and the `--csv DIR` file stem.
    pub id: String,
    /// The human title line (`== title ==` in the text rendering).
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; every row has `columns.len()` cells once headers are set.
    pub rows: Vec<Vec<Cell>>,
}

impl TableData {
    /// Creates an empty table with an id and a title line.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self { id: id.into(), title: title.into(), columns: Vec::new(), rows: Vec::new() }
    }

    /// Sets the header cells.
    pub fn headers<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.columns = cells.into_iter().map(Into::into).collect();
        self
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width (when headers
    /// were set) — mismatched tables are bugs in the harness.
    pub fn row<I>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = Cell>,
    {
        let row: Vec<Cell> = cells.into_iter().collect();
        if !self.columns.is_empty() {
            assert_eq!(
                row.len(),
                self.columns.len(),
                "row width {} != header width {} in table {:?}",
                row.len(),
                self.columns.len(),
                self.title
            );
        }
        self.rows.push(row);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with the aligned-text renderer (the historical
    /// `Table::render`, byte-identical output).
    pub fn render(&self) -> String {
        TextRenderer.render_table(self)
    }

    /// Renders with the CSV renderer (title omitted, RFC-4180 escaping).
    pub fn to_csv(&self) -> String {
        CsvRenderer.render_table(self)
    }
}

/// An ordered collection of finished tables: what one `jetty-repro`
/// invocation materializes and hands to a renderer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResultSet {
    /// The tables, in output order.
    pub tables: Vec<TableData>,
}

impl ResultSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a finished table.
    pub fn push(&mut self, table: TableData) {
        self.tables.push(table);
    }

    /// `true` when no tables were collected.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Number of tables collected.
    pub fn len(&self) -> usize {
        self.tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_text_matches_historical_formatting() {
        assert_eq!(Cell::Empty.text(), "");
        assert_eq!(Cell::label("ba").text(), "ba");
        assert_eq!(Cell::text_cell("4 x 32x32").text(), "4 x 32x32");
        assert_eq!(Cell::Count(1234).text(), "1234");
        assert_eq!(Cell::Millions(47_100_000).text(), "47.1M");
        assert_eq!(Cell::MillionsValue(0.1).text(), "0.1M");
        assert_eq!(Cell::MBytes(57 * 1024 * 1024 + 400 * 1024).text(), "57.4MB");
        assert_eq!(Cell::Ratio(0.471).text(), "47.1%");
        assert_eq!(Cell::RatioPair { measured: 0.471, paper: 0.5 }.text(), "47.1% (50.0%)");
        assert_eq!(Cell::DeltaPoints(0.012).text(), "+1.2");
        assert_eq!(Cell::DeltaPoints(-0.029).text(), "-2.9");
        assert_eq!(Cell::Float(0.02).text(), "0.02");
        assert_eq!(Cell::Float(1.0).text(), "1");
        assert_eq!(Cell::Fixed { value: 16.0, dp: 1 }.text(), "16.0");
        assert_eq!(Cell::Fixed { value: 0.5, dp: 2 }.text(), "0.50");
        assert_eq!(Cell::EnergyUj(12.34).text(), "12.3");
        assert_eq!(Cell::Ratio(0.471).to_string(), "47.1%");
    }

    #[test]
    fn every_cell_variant_round_trips_through_json() {
        let cells = vec![
            Cell::Empty,
            Cell::label("un, \"quoted\""),
            Cell::text_cell("4 x 32x32"),
            Cell::Count(u64::from(u32::MAX) + 7),
            Cell::Millions(47_100_000),
            Cell::MillionsValue(0.1),
            Cell::MBytes(1024),
            Cell::Ratio(0.4711234567),
            Cell::RatioPair { measured: 0.1, paper: 0.25 },
            Cell::DeltaPoints(-0.029),
            Cell::Float(0.02),
            Cell::Fixed { value: 16.25, dp: 2 },
            Cell::EnergyUj(12.34),
        ];
        for cell in cells {
            let mut buf = String::new();
            cell.write_json(&mut buf);
            let parsed = Json::parse(&buf).expect("cell JSON must parse");
            assert_eq!(Cell::from_json(&parsed), Some(cell.clone()), "{buf}");
        }
    }

    #[test]
    fn from_json_rejects_unknown_kinds_and_shapes() {
        for bad in [
            r#"{"kind":"nope"}"#,
            r#"{"kind":"count"}"#,
            r#"{"kind":"count","value":"x"}"#,
            r#"{"kind":"fixed","value":1.0}"#,
            r#"{"value":1.0}"#,
            r#"{"kind":"ratio_pair","measured":0.1}"#,
        ] {
            let parsed = Json::parse(bad).expect("valid JSON");
            assert_eq!(Cell::from_json(&parsed), None, "{bad}");
        }
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = TableData::new("demo", "demo");
        t.headers(["a", "b"]);
        t.row([Cell::label("only-one")]);
    }

    #[test]
    fn result_set_collects_in_order() {
        let mut set = ResultSet::new();
        assert!(set.is_empty());
        set.push(TableData::new("a", "A"));
        set.push(TableData::new("b", "B"));
        assert_eq!(set.len(), 2);
        assert_eq!(set.tables[0].id, "a");
        assert_eq!(set.tables[1].id, "b");
    }
}
