//! The engine's acceptance bar: parallel execution must be byte-identical
//! to the sequential path, at the library level (rendered `Table`s) and at
//! the binary level (`jetty-repro` stdout).

use std::process::Command;

use jetty_experiments::figures::{self, Fig6Panel};
use jetty_experiments::{tables, Engine, RunOptions};

const SCALE: f64 = 0.01;

#[test]
fn serial_and_four_thread_tables_are_byte_identical() {
    let options = RunOptions::paper().with_scale(SCALE);
    let serial = Engine::new(1).run_suite(&options).unwrap();
    let parallel = Engine::new(4).run_suite(&options).unwrap();

    assert_eq!(
        tables::table2(&serial).render(),
        tables::table2(&parallel).render(),
        "table2 diverged between serial and 4-thread runs"
    );
    assert_eq!(
        tables::table3(&serial).render(),
        tables::table3(&parallel).render(),
        "table3 diverged between serial and 4-thread runs"
    );
    for panel in [
        Fig6Panel::SnoopSerial,
        Fig6Panel::AllSerial,
        Fig6Panel::SnoopParallel,
        Fig6Panel::AllParallel,
    ] {
        assert_eq!(
            figures::fig6(&serial, panel).render(),
            figures::fig6(&parallel, panel).render(),
            "fig6 {panel:?} diverged between serial and 4-thread runs"
        );
    }
}

#[test]
fn repro_stdout_is_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_jetty-repro"))
            .args(["table2", "table3", "fig6", "--scale", "0.01", "--threads", threads])
            .output()
            .expect("failed to spawn jetty-repro");
        assert!(out.status.success(), "jetty-repro --threads {threads} failed");
        out.stdout
    };
    let serial = run("1");
    let parallel = run("4");
    assert!(!serial.is_empty());
    assert_eq!(serial, parallel, "stdout must not depend on --threads");
}
