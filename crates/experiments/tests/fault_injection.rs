//! The fault matrix: end-to-end proof that injected failures degrade the
//! pipeline gracefully instead of tearing it down.
//!
//! Every test spawns the `jetty-repro` binary because `JETTY_FAULT` (like
//! `JETTY_SIMD`) is resolved once per process — a fresh process per
//! scenario keeps the injections independent. The spawned binary is the
//! test-profile build, which unwinds on panic, so worker-panic containment
//! is observable here even though the release profile aborts.

use std::path::PathBuf;
use std::process::{Command, Output};

/// The tiny base suite every scenario runs: `all --scale 0.002` on the
/// default 4-way platform.
const SCALE: &str = "0.002";
/// The engine cache key of that base suite (what `JETTY_FAULT` targets).
const BASE_SUITE: &str = "cpus4-scale0.002-sb-moesi-paperbank22";
/// The cache key of the 8-way summary suite `all` also runs.
const SMP8_SUITE: &str = "cpus8-scale0.002-sb-moesi-paperbank22";

fn repro(fault: Option<&str>, args: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_jetty-repro"));
    if let Some(spec) = fault {
        cmd.env("JETTY_FAULT", spec);
    }
    cmd.args(args).output().expect("failed to spawn jetty-repro")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Splits text-renderer output into its `== title ==` blocks, dropping the
/// blocks whose title matches `drop`.
fn blocks_without(text: &str, drop: &[&str]) -> Vec<String> {
    let mut blocks: Vec<String> = Vec::new();
    for line in text.lines() {
        if line.starts_with("== ") {
            blocks.push(String::new());
        }
        if let Some(current) = blocks.last_mut() {
            current.push_str(line);
            current.push('\n');
        }
    }
    blocks.retain(|b| {
        let title = b.lines().next().unwrap_or("");
        !drop.iter().any(|d| title.contains(d))
    });
    blocks
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jetty-fault-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn a_failed_suite_degrades_all_to_a_partial_result() {
    let clean = repro(None, &["all", "--scale", SCALE, "--threads", "2"]);
    assert_eq!(clean.status.code(), Some(0), "clean run must exit 0");

    let fault = format!("suite-fail@{SMP8_SUITE}");
    let partial = repro(Some(&fault), &["all", "--scale", SCALE, "--threads", "2"]);
    assert_eq!(partial.status.code(), Some(2), "partial result must exit 2");

    // The failure is announced: once on stderr, once in the final
    // failures table (with the suite id, the typed kind, and the detail).
    let err = stderr(&partial);
    assert!(err.contains("[fault] injection active"), "{err}");
    assert!(err.contains(&format!("error: suite {SMP8_SUITE}")), "{err}");
    let out = stdout(&partial);
    assert!(out.contains("== Failed suites"), "{out}");
    assert!(out.contains(SMP8_SUITE), "{out}");
    assert!(out.contains("simulation"), "{out}");
    assert!(out.contains("injected fault: suite-fail"), "{out}");

    // Every surviving exhibit is byte-identical to the clean run: strip
    // the 8-way block from the clean output and the failures block from
    // the partial one, and the documents must match exactly.
    let clean_blocks = blocks_without(&stdout(&clean), &["8-way SMP summary"]);
    let partial_blocks = blocks_without(&out, &["Failed suites"]);
    assert!(!clean_blocks.is_empty());
    assert_eq!(clean_blocks, partial_blocks, "surviving tables must be byte-identical");
}

#[test]
fn a_totally_failed_invocation_exits_one() {
    // The only requested exhibit fails: nothing but the failures table
    // renders, and the exit code says "total", not "partial".
    let fault = format!("suite-fail@{SMP8_SUITE}");
    let out = repro(Some(&fault), &["smp8", "--scale", SCALE]);
    assert_eq!(out.status.code(), Some(1), "total failure must exit 1");
    let text = stdout(&out);
    assert!(text.contains("== Failed suites"), "{text}");
    assert!(!text.contains("8-way SMP summary"), "{text}");
}

#[test]
fn failures_flow_through_every_renderer() {
    let fault = format!("suite-fail@{SMP8_SUITE}");
    for (format, needle) in [
        ("text", "== Failed suites".to_string()),
        ("json", "\"id\": \"failures\"".to_string()),
        ("csv", format!("{SMP8_SUITE},simulation")),
    ] {
        let out = repro(Some(&fault), &["smp8", "--scale", SCALE, "--format", format]);
        assert_eq!(out.status.code(), Some(1), "--format {format}");
        let text = stdout(&out);
        assert!(text.contains(&needle), "--format {format} lacks the failure: {text}");
        assert!(text.contains(SMP8_SUITE), "--format {format} lacks the suite id: {text}");
    }
}

#[test]
fn a_worker_panic_is_contained_as_a_suite_failure() {
    // The test-profile binary unwinds, so a panicking job must surface as
    // a typed simulation error on its suite — same shape as suite-fail —
    // while the sibling suite still renders.
    let fault = format!("suite-panic@{SMP8_SUITE}");
    let out = repro(Some(&fault), &["all", "--scale", SCALE, "--threads", "2"]);
    assert_eq!(out.status.code(), Some(2), "panic must degrade, not abort");
    let text = stdout(&out);
    assert!(text.contains("== Failed suites"), "{text}");
    assert!(text.contains("worker panicked"), "{text}");
    assert!(text.contains("injected fault: suite-panic"), "{text}");
    assert!(text.contains("Table 2"), "surviving exhibits must render: {text}");
}

#[test]
fn an_expired_deadline_fails_the_slow_suite_only() {
    // slow-suite stretches each base-suite job far past the 500 ms budget
    // (the budget is generous so the un-slowed 8-way suite never trips it,
    // even on a loaded CI host); the 8-way suite must render normally.
    let fault = format!("slow-suite@{BASE_SUITE}:700");
    let out =
        repro(Some(&fault), &["all", "--scale", SCALE, "--threads", "2", "--deadline-ms", "500"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("== Failed suites"), "{text}");
    assert!(text.contains("deadline"), "{text}");
    assert!(text.contains("500 ms job deadline"), "{text}");
    // The base suite feeds table2..fig6; all of those are skipped.
    assert!(!text.contains("Table 2"), "{text}");
    // Static exhibits and the independent 8-way suite survive.
    assert!(text.contains("Table 1"), "{text}");
    assert!(text.contains("8-way SMP summary"), "{text}");
}

#[test]
fn transient_store_write_errors_are_retried_to_success() {
    let dir = temp_dir("retry");
    let store = dir.join("runs.store");
    let store_arg = store.to_str().expect("utf8 path");

    // Two injected failures, three attempts: the append must succeed.
    let out = repro(Some("store-write-err@frame1:2"), &["table1", "--store", store_arg]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let err = stderr(&out);
    assert!(err.contains("retrying in"), "{err}");
    assert!(err.contains("[store] recorded run #1"), "{err}");

    // The stored record is intact and listable.
    let list = repro(None, &["runs", "--strict", "--store", store_arg]);
    assert_eq!(list.status.code(), Some(0), "stderr: {}", stderr(&list));
    assert!(stdout(&list).contains("table1"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_permanent_store_write_error_degrades_to_partial() {
    let dir = temp_dir("exhaust");
    let store = dir.join("runs.store");
    let store_arg = store.to_str().expect("utf8 path");

    // Uncounted fault: every attempt fails, retries exhaust, the tables
    // still render, and the exit code reports the partial outcome.
    let out = repro(Some("store-write-err@frame1"), &["table1", "--store", store_arg]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("Table 1"), "tables must render before the append");
    let err = stderr(&out);
    assert!(err.contains("after 3 attempts"), "{err}");
    assert!(err.contains("intact records are untouched"), "{err}");

    // The store was not corrupted: the next (fault-free) append works and
    // the strict listing passes.
    let retry = repro(None, &["table1", "--store", store_arg]);
    assert_eq!(retry.status.code(), Some(0), "stderr: {}", stderr(&retry));
    assert!(stderr(&retry).contains("[store] recorded run #1"));
    let list = repro(None, &["runs", "--strict", "--store", store_arg]);
    assert_eq!(list.status.code(), Some(0), "stderr: {}", stderr(&list));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn an_invalid_fault_spec_warns_and_injects_nothing() {
    let out = repro(Some("flip-bits@everywhere"), &["table1"]);
    assert_eq!(out.status.code(), Some(0), "invalid spec must not fail the run");
    let err = stderr(&out);
    assert!(err.contains("warning: ignoring invalid JETTY_FAULT"), "{err}");
    assert!(err.contains("no faults injected"), "{err}");
    assert!(stdout(&out).contains("Table 1"));
}

#[test]
fn a_fault_on_an_unrequested_suite_is_inert() {
    // Fault specs name exact cache keys; an invocation that never builds
    // that key runs clean (and exits 0).
    let fault = format!("suite-fail@{SMP8_SUITE}");
    let clean = repro(None, &["table2", "--scale", SCALE]);
    let faulted = repro(Some(&fault), &["table2", "--scale", SCALE]);
    assert_eq!(faulted.status.code(), Some(0));
    assert_eq!(faulted.stdout, clean.stdout, "inert fault changed stdout");
}
