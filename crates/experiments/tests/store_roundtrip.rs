//! Property tests: arbitrary `ResultSet`/`Cell` trees survive the store
//! byte format exactly.
//!
//! The record payload is hand-rolled JSON (no serde), so the risky
//! surface is escaping and float formatting: labels full of commas,
//! quotes, backslashes, control characters and astral-plane unicode, and
//! floats at awkward magnitudes, must all come back structurally equal
//! after `append` → file bytes → `scan`. The vendored proptest stub has
//! no string strategy, so hostile strings are built by indexing into an
//! adversarial character palette.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use jetty_experiments::store::{RunInfo, RunStore};
use jetty_experiments::{Cell, ResultSet, TableData};
use proptest::prelude::*;
use proptest::strategy::Union;

/// Characters chosen to break naive quoting: CSV separators, JSON string
/// syntax, escapes, control characters, multi-byte and astral unicode.
const PALETTE: &[char] = &[
    'a',
    'Z',
    '0',
    ' ',
    ',',
    ';',
    '"',
    '\'',
    '\\',
    '/',
    '\n',
    '\t',
    '\r',
    '\u{1}',
    '\u{7f}',
    '{',
    '}',
    '[',
    ']',
    ':',
    'é',
    'ß',
    '→',
    '😀',
    '\u{10FFFF}',
];

fn hostile_string() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..PALETTE.len(), 0..12)
        .prop_map(|idxs| idxs.into_iter().map(|i| PALETTE[i]).collect())
}

/// Finite floats across signs and magnitudes (non-finite floats degrade
/// to JSON null by design, so they are out of scope for exact
/// round-tripping).
fn finite_f64() -> impl Strategy<Value = f64> {
    (any::<f64>(), 0i32..13).prop_map(|(unit, exp)| (unit - 0.5) * 10f64.powi(exp - 6))
}

fn cell() -> Union<Cell> {
    prop_oneof![
        Just(Cell::Empty),
        hostile_string().prop_map(Cell::Label),
        hostile_string().prop_map(Cell::Text),
        any::<u64>().prop_map(Cell::Count),
        any::<u64>().prop_map(Cell::Millions),
        finite_f64().prop_map(Cell::MillionsValue),
        any::<u64>().prop_map(Cell::MBytes),
        finite_f64().prop_map(Cell::Ratio),
        (finite_f64(), finite_f64())
            .prop_map(|(measured, paper)| Cell::RatioPair { measured, paper }),
        finite_f64().prop_map(Cell::DeltaPoints),
        finite_f64().prop_map(Cell::Float),
        (finite_f64(), 0u8..10).prop_map(|(value, dp)| Cell::Fixed { value, dp }),
        finite_f64().prop_map(Cell::EnergyUj),
    ]
}

/// Arbitrary tables — including ragged rows and empty row/column sets,
/// which the store must carry faithfully even though the in-tree table
/// builders never produce them.
fn table() -> impl Strategy<Value = TableData> {
    (
        hostile_string(),
        hostile_string(),
        prop::collection::vec(hostile_string(), 0..5),
        prop::collection::vec(prop::collection::vec(cell(), 0..5), 0..5),
    )
        .prop_map(|(id, title, columns, rows)| TableData { id, title, columns, rows })
}

fn result_set() -> impl Strategy<Value = ResultSet> {
    prop::collection::vec(table(), 0..4).prop_map(|tables| ResultSet { tables })
}

fn run_info() -> impl Strategy<Value = RunInfo> {
    (hostile_string(), hostile_string(), hostile_string(), any::<u64>(), any::<u64>()).prop_map(
        |(git_rev, command, options, unix_time, timing_ms)| RunInfo {
            unix_time,
            git_rev,
            command,
            options,
            timing_ms,
        },
    )
}

/// A fresh store file per property case (no clock or randomness — just a
/// process-wide counter, keeping the stub's determinism intact).
fn fresh_store() -> (RunStore, PathBuf) {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let path = std::env::temp_dir().join(format!(
        "jetty_store_roundtrip_{}_{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_file(&path);
    (RunStore::open(&path), path)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_records_round_trip_exactly(info in run_info(), set in result_set()) {
        let (store, path) = fresh_store();
        let outcome = store.append(&info, &set).expect("append must succeed");
        prop_assert_eq!(outcome.seq, 1);

        let scan = store.scan().expect("scan must succeed");
        prop_assert!(scan.damage.is_none(), "fresh store must be clean: {:?}", scan.damage);
        prop_assert_eq!(scan.records.len(), 1);
        let record = &scan.records[0];
        prop_assert_eq!(&record.results, &set, "result tree must survive the byte format");
        prop_assert_eq!(&record.meta.git_rev, &info.git_rev);
        prop_assert_eq!(&record.meta.command, &info.command);
        prop_assert_eq!(&record.meta.options, &info.options);
        prop_assert_eq!(record.meta.unix_time, info.unix_time);
        prop_assert_eq!(record.meta.timing_ms, info.timing_ms);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn multi_record_stores_keep_every_record_in_order(
        sets in prop::collection::vec(result_set(), 1..5),
        info in run_info(),
    ) {
        let (store, path) = fresh_store();
        for set in &sets {
            store.append(&info, set).expect("append must succeed");
        }
        let scan = store.scan().expect("scan must succeed");
        prop_assert!(scan.damage.is_none());
        prop_assert_eq!(scan.records.len(), sets.len());
        for (i, set) in sets.iter().enumerate() {
            prop_assert_eq!(scan.records[i].meta.seq, i as u64 + 1);
            prop_assert_eq!(&scan.records[i].results, set, "record {} must be intact", i + 1);
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn hostile_labels_survive_a_store_cycle(labels in prop::collection::vec(hostile_string(), 1..8)) {
        // The concentrated version of the property: a table whose every
        // string field is adversarial.
        let mut table = TableData::new(labels[0].clone(), labels.join(""));
        table.columns = labels.clone();
        table.rows.push(labels.iter().cloned().map(Cell::Label).collect());
        table.rows.push(labels.iter().cloned().map(Cell::Text).collect());
        let set = ResultSet { tables: vec![table] };

        let (store, path) = fresh_store();
        let info = RunInfo {
            unix_time: 0,
            git_rev: labels.join(","),
            command: labels[0].clone(),
            options: labels.concat(),
            timing_ms: 0,
        };
        store.append(&info, &set).expect("append must succeed");
        let scan = store.scan().expect("scan must succeed");
        prop_assert_eq!(&scan.records[0].results, &set);
        prop_assert_eq!(&scan.records[0].meta.git_rev, &info.git_rev);
        let _ = fs::remove_file(&path);
    }
}
