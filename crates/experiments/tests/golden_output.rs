//! Golden-output determinism guard.
//!
//! `jetty-repro all` (and the `protocols` extension) stdout is kept
//! byte-comparable across versions: the whole reproduction is
//! deterministic (synthetic traces, fixed seeds, a deterministic engine),
//! so any stdout drift is either an intentional output change — update the
//! golden file deliberately — or a silent behaviour change in the
//! simulator, which is exactly what this test exists to catch. The
//! hot-path refactors (SoA caches, scratch-buffer fills, fast version
//! maps) and the typed-results refactor (collect typed, render late) ride
//! on this guarantee: they must be behaviour-preserving by construction,
//! and this file is the reviewer's proof.
//!
//! Regenerate (only for an intentional output change) with:
//!
//! ```text
//! cargo run --release --bin jetty-repro -- all --scale 0.02 --threads 2 \
//!     > tests/golden/all_scale002.txt
//! cargo run --release --bin jetty-repro -- protocols --scale 0.02 --threads 2 \
//!     > tests/golden/protocols_scale002.txt
//! ```

use std::path::PathBuf;
use std::process::Command;

/// Repo-root path of a golden transcript.
fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden").join(name)
}

/// Runs `jetty-repro <command> --scale 0.02 --threads 2` and asserts the
/// stdout matches the named golden file byte for byte, pointing at the
/// first diverging line on failure.
fn assert_matches_golden(command: &str, golden_name: &str) {
    let golden = std::fs::read(golden_path(golden_name)).unwrap_or_else(|e| {
        panic!("tests/golden/{golden_name} unreadable ({e}) — see module docs")
    });
    let out = Command::new(env!("CARGO_BIN_EXE_jetty-repro"))
        .args([command, "--scale", "0.02", "--threads", "2"])
        .output()
        .expect("failed to spawn jetty-repro");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    if out.stdout != golden {
        // Locate the first divergence for a reviewable failure message.
        let actual = String::from_utf8_lossy(&out.stdout);
        let expected = String::from_utf8_lossy(&golden);
        for (k, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
            assert_eq!(
                a,
                e,
                "stdout diverges from tests/golden/{golden_name} at line {} — \
                 if the output change is intentional, regenerate the golden file \
                 (see tests/golden_output.rs docs)",
                k + 1
            );
        }
        panic!(
            "stdout length differs from the golden file ({} vs {} bytes) with a \
             common prefix — regenerate tests/golden/{golden_name} if intentional",
            out.stdout.len(),
            golden.len()
        );
    }
}

#[test]
fn all_scale002_stdout_matches_the_golden_file() {
    assert_matches_golden("all", "all_scale002.txt");
}

#[test]
fn sharded_all_scale002_stdout_matches_the_golden_file() {
    // The golden guarantee explicitly spans shard counts: the serial
    // per-reference pass fixes global bus order before any replay runs,
    // so fanning the per-node snoop replay out can never reach stdout.
    let golden = std::fs::read(golden_path("all_scale002.txt"))
        .expect("tests/golden/all_scale002.txt unreadable — see module docs");
    let out = Command::new(env!("CARGO_BIN_EXE_jetty-repro"))
        .args(["all", "--scale", "0.02", "--threads", "2"])
        .env("JETTY_SHARDS", "2")
        .output()
        .expect("failed to spawn jetty-repro");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(
        out.stdout, golden,
        "JETTY_SHARDS=2 stdout must be byte-identical to the serial golden file"
    );
}

#[test]
fn protocols_scale002_stdout_matches_the_golden_file() {
    assert_matches_golden("protocols", "protocols_scale002.txt");
}

#[test]
fn thread_count_does_not_change_stdout() {
    // The golden guarantee explicitly spans thread counts: the engine
    // reassembles suites in application order, so worker scheduling must
    // never reach stdout.
    let run = |threads: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_jetty-repro"))
            .args(["table2", "--scale", "0.005", "--threads", threads])
            .output()
            .expect("failed to spawn jetty-repro");
        assert!(out.status.success());
        out.stdout
    };
    let serial = run("1");
    assert_eq!(serial, run("2"));
    assert_eq!(serial, run("3"));
}
