//! End-to-end tests of the run-store surfaces of `jetty-repro`:
//! `--store` recording, `runs` listing, and `diff` — including the golden
//! guard for the diff rendering and its determinism across thread counts.
//!
//! The store records wall-clock time, git revision, and suite timing,
//! none of which is reproducible; the `JETTY_STORE_NOW`, `JETTY_GIT_REV`
//! and `JETTY_STORE_TIMING_MS` environment overrides pin them, which is
//! how both these tests and the committed CI reference record stay
//! deterministic.
//!
//! Regenerate the golden diff transcript (only for an intentional output
//! change) with:
//!
//! ```text
//! S=$(mktemp -d)/ref.store
//! for i in 1 2; do \
//!   JETTY_STORE_NOW=0 JETTY_GIT_REV=reference JETTY_STORE_TIMING_MS=1000 \
//!   target/release/jetty-repro all --scale 0.02 --threads 2 --store "$S" >/dev/null; done
//! target/release/jetty-repro diff 1 2 --store "$S" --timing-band 10 \
//!     > tests/golden/diff_scale002.txt
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use jetty_experiments::store::{RunInfo, RunStore};
use jetty_experiments::Cell;

/// Env that pins every non-deterministic store metadata field.
const PINNED: &[(&str, &str)] =
    &[("JETTY_STORE_NOW", "0"), ("JETTY_GIT_REV", "reference"), ("JETTY_STORE_TIMING_MS", "1000")];

fn repro(args: &[&str], envs: &[(&str, &str)]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_jetty-repro"))
        .args(args)
        .envs(envs.iter().copied())
        .output()
        .expect("failed to spawn jetty-repro")
}

fn tmp_store(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("jetty_store_cli_{}_{name}", std::process::id()));
    let _ = fs::remove_file(&path);
    path
}

/// Records `command` at `scale` into `store` with pinned metadata.
fn record(store: &Path, command: &str, scale: &str, threads: &str) {
    let out = repro(
        &[command, "--scale", scale, "--threads", threads, "--store", store.to_str().unwrap()],
        PINNED,
    );
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("[store] recorded run #"),
        "recording must be announced on stderr"
    );
}

#[test]
fn identical_runs_diff_clean_and_match_the_golden_transcript() {
    let store = tmp_store("golden");
    record(&store, "all", "0.02", "2");
    record(&store, "all", "0.02", "2");

    let out = repro(
        &["diff", "1", "2", "--store", store.to_str().unwrap(), "--timing-band", "10"],
        PINNED,
    );
    assert!(out.status.success(), "identical runs must diff clean");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("clean (0 drift entries"), "{stderr}");

    let golden_path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/diff_scale002.txt");
    let golden = fs::read(&golden_path).unwrap_or_else(|e| {
        panic!("tests/golden/diff_scale002.txt unreadable ({e}) — see module docs")
    });
    if out.stdout != golden {
        let actual = String::from_utf8_lossy(&out.stdout);
        let expected = String::from_utf8_lossy(&golden);
        for (k, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
            assert_eq!(
                a,
                e,
                "diff stdout diverges from tests/golden/diff_scale002.txt at line {} — \
                 regenerate deliberately if the change is intentional (see module docs)",
                k + 1
            );
        }
        panic!("diff stdout length differs from the golden transcript");
    }
    let _ = fs::remove_file(&store);
}

#[test]
fn recorded_results_and_diff_text_are_identical_across_thread_counts() {
    // The engine's determinism guarantee extends through the store: a
    // suite recorded on 1, 2 or 3 workers must produce byte-identical
    // records (modulo the pinned metadata) and byte-identical diff text.
    let stores: Vec<PathBuf> = ["1", "2", "3"]
        .iter()
        .map(|threads| {
            let store = tmp_store(&format!("threads{threads}"));
            record(&store, "table2", "0.005", threads);
            store
        })
        .collect();

    let mut diffs = Vec::new();
    for other in &stores[1..] {
        let out = repro(
            &[
                "diff",
                &format!("{}:1", stores[0].to_str().unwrap()),
                &format!("{}:1", other.to_str().unwrap()),
            ],
            &[],
        );
        assert!(
            out.status.success(),
            "thread count changed recorded results: {}",
            String::from_utf8_lossy(&out.stdout)
        );
        diffs.push(out.stdout);
    }
    assert_eq!(diffs[0], diffs[1], "diff text must be byte-identical across thread counts");
    for store in &stores {
        let _ = fs::remove_file(store);
    }
}

#[test]
fn injected_cell_drift_fails_the_diff_and_names_the_coordinates() {
    let store_path = tmp_store("drift");
    record(&store_path, "table2", "0.005", "2");

    // Forge run #2: the same results with exactly one cell altered,
    // appended through the library under the same recorded identity.
    let store = RunStore::open(&store_path);
    let scan = store.scan().unwrap();
    let original = &scan.records[0];
    let mut drifted = original.results.clone();
    let table_id = drifted.tables[0].id.clone();
    let column = drifted.tables[0].columns[1].clone();
    drifted.tables[0].rows[2][1] = Cell::Count(123_456_789);
    let meta = &original.meta;
    store
        .append(
            &RunInfo {
                unix_time: meta.unix_time,
                git_rev: meta.git_rev.clone(),
                command: meta.command.clone(),
                options: meta.options.clone(),
                timing_ms: meta.timing_ms,
            },
            &drifted,
        )
        .unwrap();

    let out = repro(&["diff", "1", "2", "--store", store_path.to_str().unwrap()], &[]);
    assert!(!out.status.success(), "injected drift must fail the diff (the CI gate signal)");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("drift (1 drift entries"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The drift table names the exact coordinates: table id, 1-based row,
    // column name, and both values.
    for needle in [table_id.as_str(), column.as_str(), "123456789", "cell"] {
        assert!(stdout.contains(needle), "drift report must contain {needle:?}: {stdout}");
    }
    let drift_line = stdout
        .lines()
        .find(|l| l.contains("123456789"))
        .expect("a drift row naming the injected value");
    assert!(drift_line.contains(&table_id), "row must name the table: {drift_line}");
    assert!(drift_line.contains(" 3 "), "row must carry the 1-based row number: {drift_line}");
    assert!(drift_line.contains(&column), "row must name the column: {drift_line}");
    let _ = fs::remove_file(&store_path);
}

#[test]
fn timing_band_gates_the_exit_code() {
    let store = tmp_store("timing");
    let slow: Vec<(&str, &str)> = vec![
        ("JETTY_STORE_NOW", "0"),
        ("JETTY_GIT_REV", "reference"),
        ("JETTY_STORE_TIMING_MS", "1200"),
    ];
    record(&store, "table1", "0.02", "1");
    let out = repro(
        &["table1", "--scale", "0.02", "--threads", "1", "--store", store.to_str().unwrap()],
        &slow,
    );
    assert!(out.status.success());

    // 20% slower: fails a 10% band, passes a 30% band, passes with no band.
    let s = store.to_str().unwrap();
    let banded = repro(&["diff", "1", "2", "--store", s, "--timing-band", "10"], &[]);
    assert!(!banded.status.success(), "20% slowdown must fail a 10% band");
    let stderr = String::from_utf8_lossy(&banded.stderr);
    assert!(stderr.contains("timing-regression"), "{stderr}");
    let stdout = String::from_utf8_lossy(&banded.stdout);
    assert!(stdout.contains("1.200"), "verdict table must show the timing ratio: {stdout}");

    let loose = repro(&["diff", "1", "2", "--store", s, "--timing-band", "30"], &[]);
    assert!(loose.status.success(), "20% slowdown passes a 30% band");
    let unbanded = repro(&["diff", "1", "2", "--store", s], &[]);
    assert!(unbanded.status.success(), "no band, no timing gate");
    let _ = fs::remove_file(&store);
}

#[test]
fn runs_lists_every_recorded_invocation() {
    let store = tmp_store("list");
    record(&store, "table1", "0.02", "1");
    record(&store, "protocols", "0.002", "2");

    let out = repro(&["runs", "--store", store.to_str().unwrap()], &[]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("== run store:"), "{stdout}");
    for needle in [
        "table1",
        "protocols",
        "reference",
        "cpus4-scale0.02-sb-moesi-paperbank22",
        "cpus4-scale0.002-sb-moesi-paperbank22",
    ] {
        assert!(stdout.contains(needle), "runs listing must contain {needle:?}: {stdout}");
    }
    // `latest` resolves to run #2: diffing latest against 2 is clean and
    // compares a run to itself.
    let latest = repro(&["diff", "latest", "2", "--store", store.to_str().unwrap()], &[]);
    assert!(latest.status.success());
    assert!(String::from_utf8_lossy(&latest.stderr).contains("#2@reference vs #2@reference"));
    let _ = fs::remove_file(&store);
}

#[test]
fn diff_renders_through_the_json_renderer_too() {
    let store = tmp_store("json");
    record(&store, "table1", "0.02", "1");
    record(&store, "table1", "0.02", "1");
    let out =
        repro(&["diff", "1", "2", "--store", store.to_str().unwrap(), "--format", "json"], &[]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{'), "JSON document expected: {stdout}");
    for id in ["diff_summary", "diff_drift", "diff_verdict"] {
        assert!(stdout.contains(id), "JSON must carry table {id}: {stdout}");
    }
    let _ = fs::remove_file(&store);
}
