//! End-to-end tests of the `jetty-repro` binary's argument handling.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_jetty-repro"))
        .args(args)
        .output()
        .expect("failed to spawn jetty-repro")
}

#[test]
fn rejects_cpu_counts_below_two() {
    for cpus in ["0", "1"] {
        let out = repro(&["table2", "--cpus", cpus, "--scale", "0.001"]);
        assert!(!out.status.success(), "--cpus {cpus} must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--cpus must be at least 2"),
            "unhelpful error for --cpus {cpus}: {stderr}"
        );
        assert!(out.stdout.is_empty(), "no tables before the error");
    }
}

#[test]
fn rejects_non_numeric_cpus() {
    let out = repro(&["table2", "--cpus", "four"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad cpu count"));
}

#[test]
fn rejects_zero_threads() {
    let out = repro(&["table1", "--threads", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads must be at least 1"));
}

#[test]
fn help_documents_threads_flag() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--threads"));
    assert!(stdout.contains("JETTY_THREADS"));
}

#[test]
fn help_prints_usage_to_stdout_and_exits_zero() {
    // Both spellings take the dedicated help path: usage on stdout,
    // nothing on stderr, success — NOT the unknown-flag error path
    // (stderr + nonzero).
    for flag in ["--help", "-h"] {
        let out = repro(&[flag]);
        assert!(out.status.success(), "{flag} must exit 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("jetty-repro [COMMANDS...]"), "{flag} usage: {stdout}");
        assert!(stdout.contains("commands:"), "{flag} must list the commands");
        assert!(stdout.contains("protocols"), "{flag} must mention the protocols suite");
        assert!(out.stderr.is_empty(), "{flag} must not write to stderr");
    }
    // The error path stays distinct: unknown flags report on stderr.
    let out = repro(&["--halp"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
    assert!(out.stdout.is_empty());
}

#[test]
fn help_wins_even_after_other_arguments() {
    let out = repro(&["table1", "--scale", "0.5", "--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("commands:"));
    assert!(!stdout.contains("Table 1"), "help must short-circuit the run");
}

#[test]
fn protocols_suite_renders_all_three_protocols() {
    let out = repro(&["protocols", "--scale", "0.002", "--threads", "2"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Protocol sweep"), "missing table: {stdout}");
    for col in ["MOESI cov", "MESI cov", "MSI cov"] {
        assert!(stdout.contains(col), "missing column {col}: {stdout}");
    }
}

#[test]
fn all_does_not_include_the_protocols_extension() {
    // `jetty-repro all` output is kept byte-comparable across versions;
    // the protocols sweep must only render when requested by name.
    let out = repro(&["all", "--scale", "0.002", "--threads", "2"]);
    assert!(out.status.success());
    assert!(!String::from_utf8_lossy(&out.stdout).contains("Protocol sweep"));
}

#[test]
fn timings_flag_reports_on_stderr_and_leaves_stdout_untouched() {
    let without = repro(&["table2", "--scale", "0.002", "--threads", "1"]);
    let with = repro(&["table2", "--scale", "0.002", "--threads", "1", "--timings"]);
    assert!(without.status.success() && with.status.success());
    // stdout is byte-identical: --timings must never break the golden
    // output contract.
    assert_eq!(with.stdout, without.stdout, "--timings changed stdout");
    let stderr = String::from_utf8_lossy(&with.stderr);
    assert!(stderr.contains("[timing] suite"), "missing timing lines: {stderr}");
    assert!(stderr.contains("cpus=4"), "timing line lacks suite description: {stderr}");
    assert!(stderr.contains("across 10 jobs"), "timing line lacks job count: {stderr}");
    // Without the flag, no timing lines appear.
    assert!(!String::from_utf8_lossy(&without.stderr).contains("[timing]"));
}

#[test]
fn help_documents_timings_flag() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("--timings"));
}

#[test]
fn static_tables_run_with_explicit_threads() {
    let out = repro(&["table1", "table4", "--threads", "2"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 1"), "table1 missing: {stdout}");
    assert!(stdout.contains("Table 4"), "table4 missing: {stdout}");
}
