//! End-to-end tests of the `jetty-repro` binary's argument handling.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_jetty-repro"))
        .args(args)
        .output()
        .expect("failed to spawn jetty-repro")
}

fn repro_with_simd(simd: &str, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_jetty-repro"))
        .env("JETTY_SIMD", simd)
        .args(args)
        .output()
        .expect("failed to spawn jetty-repro")
}

#[test]
fn rejects_cpu_counts_below_two() {
    for cpus in ["0", "1"] {
        let out = repro(&["table2", "--cpus", cpus, "--scale", "0.001"]);
        assert!(!out.status.success(), "--cpus {cpus} must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--cpus must be at least 2"),
            "unhelpful error for --cpus {cpus}: {stderr}"
        );
        assert!(out.stdout.is_empty(), "no tables before the error");
    }
}

#[test]
fn rejects_non_numeric_cpus() {
    let out = repro(&["table2", "--cpus", "four"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad cpu count"));
}

#[test]
fn rejects_zero_threads() {
    let out = repro(&["table1", "--threads", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads must be at least 1"));
}

#[test]
fn help_documents_threads_flag() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--threads"));
    assert!(stdout.contains("JETTY_THREADS"));
}

#[test]
fn help_prints_usage_to_stdout_and_exits_zero() {
    // Both spellings take the dedicated help path: usage on stdout,
    // nothing on stderr, success — NOT the unknown-flag error path
    // (stderr + nonzero).
    for flag in ["--help", "-h"] {
        let out = repro(&[flag]);
        assert!(out.status.success(), "{flag} must exit 0");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("jetty-repro [COMMANDS...]"), "{flag} usage: {stdout}");
        assert!(stdout.contains("commands:"), "{flag} must list the commands");
        assert!(stdout.contains("protocols"), "{flag} must mention the protocols suite");
        assert!(out.stderr.is_empty(), "{flag} must not write to stderr");
    }
    // The error path stays distinct: unknown flags report on stderr.
    let out = repro(&["--halp"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
    assert!(out.stdout.is_empty());
}

#[test]
fn help_wins_even_after_other_arguments() {
    let out = repro(&["table1", "--scale", "0.5", "--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("commands:"));
    assert!(!stdout.contains("Table 1"), "help must short-circuit the run");
}

#[test]
fn protocols_suite_renders_all_three_protocols() {
    let out = repro(&["protocols", "--scale", "0.002", "--threads", "2"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Protocol sweep"), "missing table: {stdout}");
    for col in ["MOESI cov", "MESI cov", "MSI cov"] {
        assert!(stdout.contains(col), "missing column {col}: {stdout}");
    }
}

#[test]
fn all_does_not_include_the_protocols_extension() {
    // `jetty-repro all` output is kept byte-comparable across versions;
    // the protocols sweep must only render when requested by name.
    let out = repro(&["all", "--scale", "0.002", "--threads", "2"]);
    assert!(out.status.success());
    assert!(!String::from_utf8_lossy(&out.stdout).contains("Protocol sweep"));
}

#[test]
fn timings_flag_reports_on_stderr_and_leaves_stdout_untouched() {
    let without = repro(&["table2", "--scale", "0.002", "--threads", "1"]);
    let with = repro(&["table2", "--scale", "0.002", "--threads", "1", "--timings"]);
    assert!(without.status.success() && with.status.success());
    // stdout is byte-identical: --timings must never break the golden
    // output contract.
    assert_eq!(with.stdout, without.stdout, "--timings changed stdout");
    let stderr = String::from_utf8_lossy(&with.stderr);
    assert!(stderr.contains("[timing] suite"), "missing timing lines: {stderr}");
    assert!(stderr.contains("cpus=4"), "timing line lacks suite description: {stderr}");
    assert!(stderr.contains("across 10 jobs"), "timing line lacks job count: {stderr}");
    // Each suite line splits its wall-clock into trace generation and
    // simulation time.
    assert!(stderr.contains("(gen "), "timing line lacks generation split: {stderr}");
    assert!(stderr.contains(", sim "), "timing line lacks simulation split: {stderr}");
    // Each suite line names the replay-kernel level it ran with.
    assert!(
        stderr.contains("kernel=scalar") || stderr.contains("kernel=avx2"),
        "timing line lacks kernel tag: {stderr}"
    );
    // Without the flag, no timing lines appear.
    assert!(!String::from_utf8_lossy(&without.stderr).contains("[timing]"));
}

#[test]
fn timings_kernel_tag_follows_jetty_simd() {
    // Forcing scalar dispatch must be visible in the timing attribution
    // (and announced by the one-shot [simd] log line), and stdout must
    // stay byte-identical to the auto-dispatched run.
    let args = ["table2", "--scale", "0.002", "--threads", "1", "--timings"];
    let scalar = repro_with_simd("scalar", &args);
    let auto = repro_with_simd("auto", &args);
    assert!(scalar.status.success() && auto.status.success());
    assert_eq!(scalar.stdout, auto.stdout, "kernel dispatch changed stdout");
    let scalar_err = String::from_utf8_lossy(&scalar.stderr);
    assert!(scalar_err.contains("kernel=scalar"), "{scalar_err}");
    assert!(scalar_err.contains("[simd] kernel dispatch: scalar (JETTY_SIMD override)"));
    let auto_err = String::from_utf8_lossy(&auto.stderr);
    assert!(auto_err.contains("kernel=scalar") || auto_err.contains("kernel=avx2"), "{auto_err}");
    assert!(auto_err.contains("[simd] kernel dispatch:"), "{auto_err}");
}

#[test]
fn help_documents_timings_flag() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("--timings"));
}

/// Every subcommand the binary must accept, in usage order — the single
/// list the usage/error-agreement test checks against, so help output,
/// error output and the parser can never drift apart again (the historical
/// failure mode: a subcommand wired into the parser but missing from the
/// advertised list, or vice versa).
const EXPECTED_COMMANDS: &[&str] = &[
    "all",
    "table1",
    "fig2",
    "table2",
    "table3",
    "table4",
    "fig4a",
    "fig4b",
    "fig5a",
    "fig5b",
    "fig6",
    "smp8",
    "nsb",
    "calibrate",
    "ablation",
    "protocols",
    "sweep",
    "runs",
    "diff",
];

#[test]
fn usage_and_error_list_every_accepted_subcommand() {
    // The `commands:` line of the usage text.
    let help = repro(&["--help"]);
    assert!(help.status.success());
    let stdout = String::from_utf8_lossy(&help.stdout);
    let usage_line =
        stdout.lines().find(|l| l.starts_with("commands:")).expect("usage has a commands: line");
    let usage_list: Vec<&str> =
        usage_line.trim_start_matches("commands:").split_whitespace().collect();
    assert_eq!(usage_list, EXPECTED_COMMANDS, "usage text must list every accepted subcommand");

    // The unknown-command error repeats the same list.
    let err = repro(&["definitely-not-a-command"]);
    assert!(!err.status.success());
    let stderr = String::from_utf8_lossy(&err.stderr);
    let (_, rest) =
        stderr.split_once("(commands: ").expect("unknown-command error lists the commands");
    let error_list: Vec<&str> = rest.trim_end().trim_end_matches(')').split_whitespace().collect();
    assert_eq!(error_list, EXPECTED_COMMANDS, "error text must list every accepted subcommand");

    // And every advertised command really parses: `--help` short-circuits
    // after command validation, so this probes acceptance without
    // simulating anything.
    for cmd in EXPECTED_COMMANDS {
        let out = repro(&[cmd, "--help"]);
        assert!(out.status.success(), "advertised command {cmd} must be accepted");
    }
}

#[test]
fn format_flag_is_validated_and_documented() {
    let out = repro(&["table1", "--format", "yaml"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown format"), "{stderr}");
    assert!(stderr.contains("text json csv"), "error must list the formats: {stderr}");

    let help = repro(&["--help"]);
    let stdout = String::from_utf8_lossy(&help.stdout);
    assert!(stdout.contains("--format"), "help must document --format");
    assert!(stdout.contains("text json csv"), "help must list the formats");
}

#[test]
fn axis_flag_requires_the_sweep_command() {
    let out = repro(&["table1", "--axis", "cpus=4,8"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("sweep"), "error must point at the sweep command: {stderr}");
    assert!(out.stdout.is_empty(), "no tables before the error");
}

#[test]
fn axis_flag_validates_names_and_values() {
    for (args, needle) in [
        (vec!["sweep", "--axis", "bank=4"], "unknown sweep axis"),
        (vec!["sweep", "--axis", "cpus"], "NAME=V1,V2"),
        (vec!["sweep", "--axis", "cpus=1"], "at least 2"),
        (vec!["sweep", "--axis", "protocol=mosi"], "unknown protocol"),
        (vec!["sweep", "--axis", "filter=what"], "unknown filter id"),
        (vec!["sweep", "--axis", "scale=0"], "positive"),
        (vec!["sweep", "--axis", "cpus=4,4"], "duplicate"),
    ] {
        let out = repro(&args);
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
    }
}

#[test]
fn sweep_runs_a_two_axis_grid_with_observable_cache_reuse() {
    let out = repro(&["sweep", "--scale", "0.002", "--threads", "2", "--timings"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("== Sweep: coverage and energy across cpus x protocol"), "{stdout}");
    assert!(stdout.contains("== Sweep marginals:"), "{stdout}");
    // Default grid: protocol (3) x cpus (2) = 6 points over 6 suites.
    assert!(stdout.contains("(6 points over 6 suites"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Every point renders from the prefetched suite cache: 6 hits against
    // 6 executions.
    assert!(stderr.contains("[sweep] grid"), "{stderr}");
    assert!(stderr.contains("6 hits / 12 requests (hit rate 50.0%)"), "{stderr}");
    // --timings attributes wall-clock to exactly the 6 executed suites.
    assert_eq!(stderr.matches("[timing] suite").count(), 6, "{stderr}");
}

#[test]
fn sweep_axes_reshape_the_grid() {
    let out = repro(&[
        "sweep",
        "--scale",
        "0.002",
        "--threads",
        "2",
        "--axis",
        "protocol=moesi",
        "--axis",
        "cpus=4",
        "--axis",
        "filter=hj-ij10x4x7-ej32x4,ej-32x4,none",
        "--axis",
        "nsb=sb,nsb",
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // filter (3) x nsb (2) = 6 points, but the filter axis is free: only
    // the two L2 variants simulate.
    assert!(stdout.contains("filter x nsb"), "{stdout}");
    assert!(stdout.contains("(6 points over 2 suites"), "{stdout}");
    for id in ["hj-ij10x4x7-ej32x4", "ej-32x4", "none"] {
        assert!(stdout.contains(id), "missing filter id {id}: {stdout}");
    }
}

#[test]
fn sweep_is_not_part_of_all() {
    let out = repro(&["all", "--scale", "0.002", "--threads", "2"]);
    assert!(out.status.success());
    assert!(!String::from_utf8_lossy(&out.stdout).contains("== Sweep"));
}

#[test]
fn store_commands_validate_their_arguments() {
    for (args, needle) in [
        // `diff` needs exactly two run refs.
        (vec!["diff"], "diff needs two run refs"),
        (vec!["diff", "1"], "diff needs two run refs"),
        // A bad run ref names the accepted shapes.
        (vec!["diff", "one", "two", "--store", "/tmp/x.store"], "bad run ref"),
        // Refs without an embedded path need --store.
        (vec!["diff", "1", "2"], "pass --store PATH"),
        // `runs` always needs a store.
        (vec!["runs"], "runs needs --store PATH"),
        // Store commands are exclusive with simulation commands.
        (vec!["runs", "table1", "--store", "/tmp/x.store"], "cannot be combined"),
        (vec!["diff", "1", "2", "all", "--store", "/tmp/x.store"], "cannot be combined"),
        // --timing-band and --store argument validation.
        (vec!["table1", "--timing-band", "10"], "--timing-band only applies to diff"),
        (vec!["diff", "1", "2", "--store", "/tmp/x.store", "--timing-band", "-3"], "non-negative"),
        (
            vec!["diff", "1", "2", "--store", "/tmp/x.store", "--timing-band", "ten"],
            "bad timing band",
        ),
        (vec!["table1", "--store"], "--store needs a file path"),
    ] {
        let out = repro(&args);
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
        assert!(out.stdout.is_empty(), "{args:?}: no output before the error");
    }
}

#[test]
fn help_documents_the_store_surfaces() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["--store", "--timing-band", "diff RUN_A RUN_B", "PATH:REF"] {
        assert!(stdout.contains(needle), "help must document {needle}: {stdout}");
    }
}

#[test]
fn diff_on_a_missing_store_reports_not_found() {
    let out = repro(&["diff", "1", "2", "--store", "/nonexistent/dir/x.store"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("run 1 not found"), "{stderr}");
}

#[test]
fn static_tables_run_with_explicit_threads() {
    let out = repro(&["table1", "table4", "--threads", "2"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 1"), "table1 missing: {stdout}");
    assert!(stdout.contains("Table 4"), "table4 missing: {stdout}");
}

fn repro_with_env(env: &[(&str, &str)], args: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_jetty-repro"));
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.args(args).output().expect("failed to spawn jetty-repro")
}

#[test]
fn garbage_env_overrides_warn_once_and_name_the_fallback() {
    // Each resolve-once env knob must survive garbage: one stderr warning
    // naming the rejected value AND the fallback chosen, clean exit, and
    // stdout identical to the unconfigured run.
    let clean = repro(&["table2", "--scale", "0.002"]);
    assert!(clean.status.success());

    for (var, value, fallback_hint) in [
        ("JETTY_THREADS", "banana", "worker thread(s)"),
        ("JETTY_SIMD", "sse9", "auto-detecting kernels"),
        ("JETTY_DEADLINE_MS", "soon", "running without a job deadline"),
        ("JETTY_SHARDS", "many", "replaying snoop work in 1 shard(s)"),
    ] {
        let out = repro_with_env(&[(var, value)], &["table2", "--scale", "0.002"]);
        assert!(out.status.success(), "{var}={value} must not fail the run");
        assert_eq!(out.stdout, clean.stdout, "{var}={value} changed stdout");
        let stderr = String::from_utf8_lossy(&out.stderr);
        let warning: Vec<&str> =
            stderr.lines().filter(|l| l.contains(&format!("invalid {var}"))).collect();
        assert_eq!(warning.len(), 1, "{var}={value}: want exactly one warning, got: {stderr}");
        assert!(warning[0].starts_with("warning: ignoring"), "{var}: {}", warning[0]);
        assert!(warning[0].contains(&format!("{value:?}")), "{var} warning must name the value");
        assert!(warning[0].contains(fallback_hint), "{var} warning must name the fallback");
    }
}

#[test]
fn explicit_flags_suppress_the_env_lookup() {
    // An explicit --threads / --shards / --deadline-ms wins silently: the
    // garbage env value is never even inspected.
    let out = repro_with_env(
        &[("JETTY_THREADS", "banana"), ("JETTY_DEADLINE_MS", "soon"), ("JETTY_SHARDS", "many")],
        &[
            "table2",
            "--scale",
            "0.002",
            "--threads",
            "2",
            "--deadline-ms",
            "60000",
            "--shards",
            "2",
        ],
    );
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("invalid JETTY_THREADS"), "{stderr}");
    assert!(!stderr.contains("invalid JETTY_DEADLINE_MS"), "{stderr}");
    assert!(!stderr.contains("invalid JETTY_SHARDS"), "{stderr}");
}

#[test]
fn shards_flag_is_validated_and_documented() {
    for (args, needle) in [
        (vec!["table2", "--shards", "0"], "--shards must be at least 1"),
        (vec!["table2", "--shards", "many"], "bad shard count"),
        (vec!["table2", "--shards"], "--shards needs a value"),
    ] {
        let out = repro(&args);
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
        assert!(out.stdout.is_empty(), "{args:?}: no output before the error");
    }
    let help = repro(&["--help"]);
    assert!(help.status.success());
    let stdout = String::from_utf8_lossy(&help.stdout);
    assert!(stdout.contains("--shards"), "help must document --shards");
    assert!(stdout.contains("JETTY_SHARDS"), "help must name the env override");
}

#[test]
fn timings_report_the_shard_count() {
    // The shards= tag reflects the effective count: --threads 1 leaves the
    // whole host to one job, so a 2-shard request survives the
    // oversubscription cap on any multi-core machine (and clamps to 1 on a
    // single-core one — accept either, but the tag must be present).
    let out =
        repro(&["table2", "--scale", "0.002", "--threads", "1", "--shards", "2", "--timings"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("shards=2") || stderr.contains("shards=1"),
        "timing line lacks shards tag: {stderr}"
    );
    // Serial runs report the tag too, pinned at 1 (the explicit flag also
    // shields this from any JETTY_SHARDS in the ambient environment —
    // CI's sharded test leg exports one).
    let serial =
        repro(&["table2", "--scale", "0.002", "--threads", "1", "--shards", "1", "--timings"]);
    assert!(serial.status.success());
    assert!(
        String::from_utf8_lossy(&serial.stderr).contains("shards=1"),
        "serial timing line must say shards=1"
    );
}

#[test]
fn deadline_flag_is_validated() {
    for (args, needle) in [
        (vec!["table2", "--deadline-ms", "0"], "--deadline-ms must be at least 1"),
        (vec!["table2", "--deadline-ms", "soon"], "bad deadline"),
        (vec!["table2", "--deadline-ms"], "--deadline-ms needs a value"),
    ] {
        let out = repro(&args);
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?}: {stderr}");
        assert!(out.stdout.is_empty(), "{args:?}: no output before the error");
    }
}

#[test]
fn strict_flag_requires_the_runs_command() {
    let out = repro(&["table1", "--strict"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--strict only applies to runs"));
}

#[test]
fn help_documents_the_failure_surfaces() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for needle in ["--deadline-ms", "JETTY_DEADLINE_MS", "--strict", "exit codes:"] {
        assert!(stdout.contains(needle), "help must document {needle}: {stdout}");
    }
}

#[test]
fn strict_runs_fails_on_a_damaged_tail() {
    let dir = std::env::temp_dir().join(format!("jetty-strict-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("runs.store");
    let store_arg = store.to_str().unwrap();

    let write = repro(&["table1", "--store", store_arg]);
    assert!(write.status.success(), "stderr: {}", String::from_utf8_lossy(&write.stderr));

    // Crash debris: a truncated frame after the intact record.
    let mut bytes = std::fs::read(&store).unwrap();
    bytes.extend_from_slice(b"JREC 000000ff");
    std::fs::write(&store, &bytes).unwrap();

    // Default: warn on stderr, list the intact prefix, exit 0.
    let lenient = repro(&["runs", "--store", store_arg]);
    assert!(lenient.status.success(), "damage alone must not fail a lenient listing");
    assert!(String::from_utf8_lossy(&lenient.stderr).contains("damaged tail"));
    assert!(String::from_utf8_lossy(&lenient.stdout).contains("table1"));

    // --strict: same listing, nonzero exit.
    let strict = repro(&["runs", "--strict", "--store", store_arg]);
    assert_eq!(strict.status.code(), Some(1), "--strict must fail on tail damage");
    assert_eq!(strict.stdout, lenient.stdout, "--strict must not change the listing");

    // An intact store passes --strict.
    std::fs::write(&store, &bytes[..bytes.len() - 13]).unwrap();
    let intact = repro(&["runs", "--strict", "--store", store_arg]);
    assert!(intact.status.success(), "intact store must pass --strict");
    std::fs::remove_dir_all(&dir).ok();
}
