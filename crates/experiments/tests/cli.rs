//! End-to-end tests of the `jetty-repro` binary's argument handling.

use std::process::{Command, Output};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_jetty-repro"))
        .args(args)
        .output()
        .expect("failed to spawn jetty-repro")
}

#[test]
fn rejects_cpu_counts_below_two() {
    for cpus in ["0", "1"] {
        let out = repro(&["table2", "--cpus", cpus, "--scale", "0.001"]);
        assert!(!out.status.success(), "--cpus {cpus} must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--cpus must be at least 2"),
            "unhelpful error for --cpus {cpus}: {stderr}"
        );
        assert!(out.stdout.is_empty(), "no tables before the error");
    }
}

#[test]
fn rejects_non_numeric_cpus() {
    let out = repro(&["table2", "--cpus", "four"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("bad cpu count"));
}

#[test]
fn rejects_zero_threads() {
    let out = repro(&["table1", "--threads", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads must be at least 1"));
}

#[test]
fn help_documents_threads_flag() {
    let out = repro(&["--help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--threads"));
    assert!(stdout.contains("JETTY_THREADS"));
}

#[test]
fn static_tables_run_with_explicit_threads() {
    let out = repro(&["table1", "table4", "--threads", "2"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table 1"), "table1 missing: {stdout}");
    assert!(stdout.contains("Table 4"), "table4 missing: {stdout}");
}
