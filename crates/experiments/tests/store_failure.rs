//! Failure injection against the run store's crash-recovery contract.
//!
//! The store promises exactly one thing about damage: **no intact record
//! is ever lost or silently altered by a damaged tail.** These tests earn
//! that promise the hard way — they build a healthy store through the
//! public API, then vandalize the file bytes directly (truncation at
//! every possible offset, bit flips over the whole tail frame, torn
//! appends, mid-file corruption) and assert that every scan still returns
//! the intact prefix, reports (never panics on) the damage, and that the
//! next append repairs the file without touching recorded history.

use std::fs;
use std::path::PathBuf;

use jetty_experiments::store::{RunInfo, RunStore, ScanOutcome};
use jetty_experiments::{Cell, ResultSet, TableData};

const HEADER_LEN: usize = "JETTYSTORE 1\n".len();

fn tmp(name: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("jetty_store_failure_{}_{name}", std::process::id()));
    let _ = fs::remove_file(&path);
    path
}

/// A result set with enough texture (escaping-hostile labels, several
/// cell kinds) that payload corruption has plenty of surface to hit.
fn sample_set(tag: u64) -> ResultSet {
    let mut t = TableData::new("table2", format!("Table 2 (variant {tag})"));
    t.headers(["app", "coverage", "snoops", "note"]);
    t.row([
        Cell::label("ba"),
        Cell::Ratio(0.471 + tag as f64 / 1000.0),
        Cell::Millions(47_100_000 + tag),
        Cell::text_cell("plain"),
    ]);
    t.row([
        Cell::label("fft, \"quoted\""),
        Cell::Ratio(0.03),
        Cell::Millions(tag),
        Cell::text_cell("commas, \"quotes\", unicodé 😀"),
    ]);
    let mut set = ResultSet::new();
    set.push(t);
    set
}

fn info(tag: u64) -> RunInfo {
    RunInfo {
        unix_time: 1_700_000_000 + tag,
        git_rev: format!("rev{tag}"),
        command: "all".into(),
        options: "cpus4-scale0.02-sb-moesi-paperbank22".into(),
        timing_ms: 1000 + tag,
    }
}

/// Builds a store with `n` records and returns (store, healthy bytes,
/// healthy scan).
fn healthy_store(name: &str, n: u64) -> (RunStore, Vec<u8>, ScanOutcome) {
    let path = tmp(name);
    let store = RunStore::open(&path);
    for tag in 1..=n {
        let outcome = store.append(&info(tag), &sample_set(tag)).unwrap();
        assert_eq!(outcome.seq, tag);
        assert!(outcome.recovered.is_none());
    }
    let bytes = fs::read(&path).unwrap();
    let scan = store.scan().unwrap();
    assert_eq!(scan.records.len(), n as usize);
    assert!(scan.damage.is_none());
    assert_eq!(scan.intact_len, bytes.len() as u64);
    (store, bytes, scan)
}

/// Byte offsets where each frame of the healthy file starts, derived from
/// re-scanning successively longer prefixes (so the test does not trust
/// any store-internal length bookkeeping).
fn frame_starts(store: &RunStore, bytes: &[u8], records: usize) -> Vec<usize> {
    let mut starts = Vec::new();
    let mut seen = 0usize;
    for cut in HEADER_LEN..=bytes.len() {
        fs::write(store.path(), &bytes[..cut]).unwrap();
        let scan = store.scan().unwrap();
        if scan.records.len() > seen && scan.damage.is_none() {
            // `cut` is the exact end of frame `seen + 1`.
            seen = scan.records.len();
            if starts.is_empty() {
                starts.push(HEADER_LEN);
            }
            if seen < records {
                starts.push(cut);
            }
        }
    }
    fs::write(store.path(), bytes).unwrap();
    assert_eq!(starts.len(), records, "found a start for every frame");
    starts
}

#[test]
fn truncation_at_every_offset_keeps_all_complete_records() {
    let (store, bytes, healthy) = healthy_store("truncate", 3);
    let starts = frame_starts(&store, &bytes, 3);
    // Frame boundaries: starts plus end-of-file.
    let mut boundaries = starts.clone();
    boundaries.push(bytes.len());

    for cut in 0..bytes.len() {
        fs::write(store.path(), &bytes[..cut]).unwrap();
        let scan = store.scan().unwrap_or_else(|e| panic!("cut at {cut}: scan errored: {e}"));
        // How many whole frames survive this cut?
        let intact = boundaries.iter().skip(1).filter(|&&end| end <= cut).count();
        assert_eq!(scan.records.len(), intact, "cut at byte {cut}");
        // Every surviving record is byte-for-byte the original — never
        // silently altered.
        assert_eq!(scan.records[..], healthy.records[..intact], "cut at byte {cut}");
        // A cut exactly on a frame boundary (or empty file) is a clean
        // shorter store; anything else is reported damage.
        let on_boundary = cut == 0 || boundaries.contains(&cut);
        assert_eq!(scan.damage.is_none(), on_boundary, "cut at byte {cut}: {:?}", scan.damage);
        if let Some(damage) = &scan.damage {
            let expected_offset = if cut < HEADER_LEN { 0 } else { starts[intact] as u64 };
            assert_eq!(damage.offset, expected_offset, "cut at byte {cut}");
        }
    }
    let _ = fs::remove_file(store.path());
}

#[test]
fn bit_flips_anywhere_in_the_tail_frame_are_detected() {
    let (store, bytes, healthy) = healthy_store("bitflip", 3);
    let starts = frame_starts(&store, &bytes, 3);
    let tail_start = starts[2];

    for pos in tail_start..bytes.len() {
        for flip in [0x01u8, 0xff] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= flip;
            fs::write(store.path(), &corrupt).unwrap();
            let scan = store
                .scan()
                .unwrap_or_else(|e| panic!("flip {flip:#04x} at {pos}: scan errored: {e}"));
            // The two records before the tail are always intact and exact.
            assert!(
                scan.records.len() >= 2,
                "flip {flip:#04x} at byte {pos} lost an intact record"
            );
            assert_eq!(scan.records[..2], healthy.records[..2], "flip {flip:#04x} at {pos}");
            // The flipped tail must never be silently accepted as the
            // original record: either it is reported as damage, or (for
            // the astronomically unlikely case of a same-checksum
            // mutation) it decodes to something different.
            if let Some(damage) = &scan.damage {
                assert_eq!(scan.records.len(), 2, "flip {flip:#04x} at {pos}");
                assert_eq!(damage.offset, tail_start as u64);
            } else {
                assert_eq!(scan.records.len(), 3, "flip {flip:#04x} at {pos}");
                assert_ne!(
                    scan.records[2], healthy.records[2],
                    "flip {flip:#04x} at byte {pos} was silently absorbed"
                );
            }
        }
    }
    let _ = fs::remove_file(store.path());
}

#[test]
fn torn_append_reports_damage_and_next_append_repairs() {
    let (store, bytes, healthy) = healthy_store("torn", 2);
    let two_records = bytes.len();

    // A third append crashes partway: only half of the new frame reaches
    // the disk.
    store.append(&info(3), &sample_set(3)).unwrap();
    let full = fs::read(store.path()).unwrap();
    let torn_len = two_records + (full.len() - two_records) / 2;
    fs::write(store.path(), &full[..torn_len]).unwrap();

    let scan = store.scan().unwrap();
    assert_eq!(scan.records[..], healthy.records[..], "prior records intact after torn append");
    let damage = scan.damage.expect("torn append must be reported");
    assert_eq!(damage.offset, two_records as u64);
    assert!(
        damage.reason.contains("torn append") || damage.reason.contains("truncated"),
        "{}",
        damage.reason
    );
    assert_eq!(scan.intact_len, two_records as u64);

    // The next append discards the torn tail, reports the recovery, and
    // writes a clean record #3.
    let outcome = store.append(&info(4), &sample_set(4)).unwrap();
    assert_eq!(outcome.seq, 3, "seq continues from the intact records");
    let recovered = outcome.recovered.expect("append must report what it discarded");
    assert_eq!(recovered.offset, two_records as u64);

    let repaired = store.scan().unwrap();
    assert!(repaired.damage.is_none(), "store is clean after recovery");
    assert_eq!(repaired.records.len(), 3);
    assert_eq!(repaired.records[..2], healthy.records[..], "history untouched by recovery");
    assert_eq!(repaired.records[2].meta.git_rev, "rev4");
    let _ = fs::remove_file(store.path());
}

#[test]
fn append_after_tail_corruption_preserves_history() {
    let (store, bytes, healthy) = healthy_store("appendflip", 3);
    let starts = frame_starts(&store, &bytes, 3);

    // Corrupt the checksum of the last record.
    let mut corrupt = bytes.clone();
    corrupt[starts[2] + "JREC 00000000 ".len()] ^= 0x04;
    fs::write(store.path(), &corrupt).unwrap();

    let outcome = store.append(&info(9), &sample_set(9)).unwrap();
    assert_eq!(outcome.seq, 3, "damaged record 3 was discarded, its slot reused");
    assert!(outcome.recovered.is_some());

    let scan = store.scan().unwrap();
    assert!(scan.damage.is_none());
    assert_eq!(scan.records.len(), 3);
    assert_eq!(scan.records[..2], healthy.records[..2]);
    assert_eq!(scan.records[2].meta.unix_time, info(9).unix_time);
    let _ = fs::remove_file(store.path());
}

#[test]
fn mid_file_corruption_stops_the_scan_at_the_damage() {
    // Corruption *before* the tail (real bit rot, not a crash) cannot be
    // skipped: without a trustworthy frame length there is no safe resync
    // point, so the contract is "every record before the damage, nothing
    // after it" — still no panic, still an exact report.
    let (store, bytes, healthy) = healthy_store("midfile", 3);
    let starts = frame_starts(&store, &bytes, 3);

    let mut corrupt = bytes.clone();
    corrupt[starts[1] + 40] ^= 0xff; // inside record 2's payload
    fs::write(store.path(), &corrupt).unwrap();

    let scan = store.scan().unwrap();
    assert_eq!(scan.records[..], healthy.records[..1]);
    let damage = scan.damage.expect("mid-file corruption must be reported");
    assert_eq!(damage.offset, starts[1] as u64);
    let _ = fs::remove_file(store.path());
}

#[test]
fn partial_header_is_recoverable_crash_debris() {
    // A crash during store creation can leave any prefix of the header.
    let path = tmp("partialheader");
    let store = RunStore::open(&path);
    for cut in 1.."JETTYSTORE 1\n".len() {
        fs::write(&path, &b"JETTYSTORE 1\n"[..cut]).unwrap();
        let scan = store.scan().unwrap();
        assert!(scan.records.is_empty(), "cut at {cut}");
        let damage = scan.damage.expect("partial header must be reported");
        assert!(damage.reason.contains("truncated store header"), "{}", damage.reason);
        assert_eq!(scan.intact_len, 0);
    }
    // And the store heals on the next append.
    let outcome = store.append(&info(1), &sample_set(1)).unwrap();
    assert_eq!(outcome.seq, 1);
    assert!(outcome.recovered.is_some());
    let scan = store.scan().unwrap();
    assert!(scan.damage.is_none());
    assert_eq!(scan.records.len(), 1);
    let _ = fs::remove_file(&path);
}

#[test]
fn duplicated_tail_frame_is_caught_by_the_sequence_check() {
    // A replayed/duplicated append (e.g. a copy-paste repair attempt)
    // passes every checksum but breaks the seq invariant — the store must
    // flag it rather than report the same run twice.
    let (store, bytes, healthy) = healthy_store("dup", 2);
    let starts = frame_starts(&store, &bytes, 2);
    let mut dup = bytes.clone();
    dup.extend_from_slice(&bytes[starts[1]..]);
    fs::write(store.path(), &dup).unwrap();

    let scan = store.scan().unwrap();
    assert_eq!(scan.records[..], healthy.records[..]);
    let damage = scan.damage.expect("duplicated frame must be reported");
    assert!(damage.reason.contains("sequence mismatch"), "{}", damage.reason);
    assert_eq!(damage.offset, bytes.len() as u64);
    let _ = fs::remove_file(store.path());
}
