//! End-to-end renderer guarantees of the `jetty-repro` binary:
//!
//! * `--format json` is **deterministic to the byte** across thread counts
//!   (stable key order, shortest-round-trip float formatting) and always
//!   parses — the parse here (no shell tools, no serde) is the CI
//!   JSON-validity check;
//! * the JSON document **round-trips**: rebuilding typed cells from the
//!   parsed document and re-rendering through the text renderer reproduces
//!   the `--format text` stdout byte for byte, which proves every value of
//!   every table survives the trip;
//! * `--format csv` escapes the configuration labels that contain commas
//!   (the historical `--csv` path silently corrupted those rows);
//! * `--csv DIR` still writes one (escaped) CSV file per exhibit.

use std::process::{Command, Output};

use jetty_experiments::results::json::Json;
use jetty_experiments::results::render::Format;
use jetty_experiments::results::{Cell, ResultSet, TableData};

fn repro(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_jetty-repro"))
        .args(args)
        .output()
        .expect("failed to spawn jetty-repro")
}

fn stdout_of(args: &[&str]) -> Vec<u8> {
    let out = repro(args);
    assert!(out.status.success(), "{args:?} failed: {}", String::from_utf8_lossy(&out.stderr));
    out.stdout
}

/// Rebuilds the typed [`ResultSet`] from a parsed JSON document.
fn reconstruct(doc: &Json) -> ResultSet {
    let mut set = ResultSet::new();
    for table in doc.get("tables").expect("tables key").as_array().expect("tables array") {
        let mut data = TableData::new(
            table.get("id").and_then(Json::as_str).expect("table id"),
            table.get("title").and_then(Json::as_str).expect("table title"),
        );
        data.headers(
            table
                .get("columns")
                .and_then(Json::as_array)
                .expect("columns")
                .iter()
                .map(|c| c.as_str().expect("string column")),
        );
        for row in table.get("rows").and_then(Json::as_array).expect("rows") {
            data.row(
                row.as_array()
                    .expect("row array")
                    .iter()
                    .map(|c| Cell::from_json(c).expect("known cell kind")),
            );
        }
        set.push(data);
    }
    set
}

#[test]
fn json_snapshot_is_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        stdout_of(&[
            "table2",
            "table3",
            "--scale",
            "0.02",
            "--format",
            "json",
            "--threads",
            threads,
        ])
    };
    let one = run("1");
    assert_eq!(one, run("2"), "--threads 2 changed the JSON bytes");
    assert_eq!(one, run("3"), "--threads 3 changed the JSON bytes");
    let doc = Json::parse(std::str::from_utf8(&one).expect("utf8")).expect("valid JSON");
    let tables = doc.get("tables").unwrap().as_array().unwrap();
    assert_eq!(tables.len(), 2);
    assert_eq!(tables[0].get("id").unwrap().as_str(), Some("table2"));
    assert_eq!(tables[1].get("id").unwrap().as_str(), Some("table3"));
}

#[test]
fn json_round_trips_every_value_of_the_full_reproduction() {
    let text = stdout_of(&["all", "--scale", "0.02", "--threads", "2"]);
    let json = stdout_of(&["all", "--scale", "0.02", "--threads", "2", "--format", "json"]);
    let doc = Json::parse(std::str::from_utf8(&json).expect("utf8")).expect("valid JSON");
    let set = reconstruct(&doc);
    // table1 + fig2 (2 panels) + table2/3/4 + fig4/fig5 (4) + fig6 (4
    // panels) + calibration + smp8 + nsb + the two ablations.
    assert_eq!(set.len(), 19, "all regenerates 19 exhibit tables");
    let re_rendered = Format::Text.renderer().render_set(&set);
    assert_eq!(
        re_rendered.as_bytes(),
        text,
        "re-rendering the parsed JSON must reproduce the text stdout byte for byte"
    );
}

#[test]
fn csv_format_escapes_comma_bearing_configuration_labels() {
    let csv = stdout_of(&["fig5b", "--scale", "0.002", "--threads", "2", "--format", "csv"]);
    let csv = String::from_utf8(csv).expect("utf8");
    assert!(csv.starts_with("# fig5b: "), "{csv}");
    assert!(csv.contains("\"(IJ-10x4x7, EJ-32x4)\""), "hybrid labels must be quoted in CSV: {csv}");
}

#[test]
fn csv_dir_still_writes_one_file_per_exhibit() {
    let dir = std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("csv_dir_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = repro(&["table1", "table4", "--csv", dir.to_str().unwrap()]);
    assert!(out.status.success());
    for name in ["table1.csv", "table4.csv"] {
        let content = std::fs::read_to_string(dir.join(name))
            .unwrap_or_else(|e| panic!("{name} missing: {e}"));
        assert!(content.lines().count() >= 4, "{name} too short: {content}");
    }
    // The files carry data rows, not comment lines (per-exhibit layout).
    let table1 = std::fs::read_to_string(dir.join("table1.csv")).unwrap();
    assert!(table1.starts_with("L2 size,"), "{table1}");
}

#[test]
fn sweep_emits_the_same_grid_in_all_three_formats() {
    fn args(fmt: &str) -> Vec<&str> {
        vec![
            "sweep",
            "--scale",
            "0.002",
            "--threads",
            "2",
            "--axis",
            "protocol=moesi,msi",
            "--axis",
            "cpus=4",
            "--format",
            fmt,
        ]
    }
    let text = String::from_utf8(stdout_of(&args("text"))).unwrap();
    let json = String::from_utf8(stdout_of(&args("json"))).unwrap();
    let csv = String::from_utf8(stdout_of(&args("csv"))).unwrap();

    assert!(text.contains("== Sweep: coverage and energy across protocol"));
    let doc = Json::parse(&json).expect("sweep JSON parses");
    let re_rendered = Format::Text.renderer().render_set(&reconstruct(&doc));
    assert_eq!(re_rendered, text, "sweep JSON must round-trip to the text rendering");
    assert!(csv.contains("# sweep: "), "{csv}");
    assert!(csv.contains("# sweep_axes: "), "{csv}");
    assert!(csv.contains("MSI"), "{csv}");
}
